// Package measure implements the paper's measurement toolkit against the
// simulated Internet: ping, traceroute, rockettrace (traceroute with AS and
// city annotations parsed from router DNS names), TCP-ping (connect-time to
// the Azureus port), and the King technique for estimating the latency
// between two recursive DNS servers.
//
// Every tool observes the world with the same error sources the paper
// discusses in Section 3.1: per-probe jitter, processing lag at DNS servers
// (which inflates small King measurements), anonymous routers, misconfigured
// router names, and alternate paths that undercut tree-predicted latencies.
package measure

import (
	"errors"
	"time"

	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/rng"
)

// Errors returned by the tools.
var (
	// ErrNoResponse means the destination did not answer the probe.
	ErrNoResponse = errors.New("measure: no response")
	// ErrSameDomain means King was attempted between two name servers of
	// one domain, where the recursive query is answered locally and never
	// forwarded (Section 3.1 discards such pairs).
	ErrSameDomain = errors.New("measure: name servers share a domain")
	// ErrNotDNS means a King endpoint is not a DNS server.
	ErrNotDNS = errors.New("measure: host is not a DNS server")
)

// Config tunes the measurement error model.
type Config struct {
	// JitterFrac is the standard deviation of multiplicative probe noise.
	JitterFrac float64
	// FloorMs is the additive noise floor of any probe (scheduler and NIC
	// timestamping granularity).
	FloorMs float64
	// KingLagMeanMs is the mean processing lag a recursive DNS server adds
	// to a King measurement (exponentially distributed, two servers
	// involved). At millisecond-scale true latencies this lag dominates,
	// which is exactly the low-latency inflation visible in Figure 4.
	KingLagMeanMs float64
	// KingTailProb/KingTailMeanMs model occasional heavy King outliers
	// (resolver retransmissions, cache misses): with KingTailProb an
	// extra exponential delay of the given mean is added.
	KingTailProb   float64
	KingTailMeanMs float64
	// TCPSetupMs is the extra time a TCP connect spends beyond one RTT.
	TCPSetupMs float64
}

// DefaultConfig returns the error model used by all experiments.
// Ping jitter is kept small because prediction subtracts pings along
// largely shared paths, whose queueing delays correlate — the residual
// independent error is what matters, not the absolute path jitter.
func DefaultConfig() Config {
	return Config{
		JitterFrac:     0.008,
		FloorMs:        0.06,
		KingLagMeanMs:  2.2,
		KingTailProb:   0.22,
		KingTailMeanMs: 22,
		TCPSetupMs:     0.2,
	}
}

// Tools is a measurement toolkit bound to a topology. Probe noise is drawn
// from a deterministic stream, so identical experiment seeds replay
// identical measurement campaigns.
type Tools struct {
	Top *netmodel.Topology
	cfg Config
	src *rng.Source
}

// NewTools builds a toolkit with the given noise configuration and seed.
func NewTools(top *netmodel.Topology, cfg Config, seed int64) *Tools {
	return &Tools{Top: top, cfg: cfg, src: rng.New(seed)}
}

// noisy applies the probe error model to a true RTT in milliseconds.
func (t *Tools) noisy(ms float64) float64 {
	ms *= 1 + t.cfg.JitterFrac*t.src.NormFloat64()
	ms += t.src.Float64() * t.cfg.FloorMs
	if ms < 0.01 {
		ms = 0.01
	}
	return ms
}

// Ping measures the RTT from host `from` to host `to` with ICMP. It fails
// if the destination filters ICMP. Measurement paths are tree paths: the
// probe traverses the routed path via the common upstream router.
func (t *Tools) Ping(from, to netmodel.HostID) (time.Duration, error) {
	if !t.Top.Host(to).RespondsPing {
		return 0, ErrNoResponse
	}
	return netmodel.Duration(t.noisy(t.Top.TreeRTTms(from, to))), nil
}

// PingRouter measures the RTT from a host to a router. Anonymous routers
// drop probes.
func (t *Tools) PingRouter(from netmodel.HostID, r netmodel.RouterID) (time.Duration, error) {
	if t.Top.Router(r).Anonymous {
		return 0, ErrNoResponse
	}
	return netmodel.Duration(t.noisy(t.Top.RouterRTTms(from, r))), nil
}

// TCPPing measures the time to complete a TCP connect to the Azureus port
// (6881) at the destination — the tool the paper falls back to because most
// peers answer neither ping nor traceroute (Section 3.2).
func (t *Tools) TCPPing(from, to netmodel.HostID) (time.Duration, error) {
	if !t.Top.Host(to).RespondsTCP {
		return 0, ErrNoResponse
	}
	ms := t.noisy(t.Top.TreeRTTms(from, to)) + t.src.Float64()*t.cfg.TCPSetupMs
	return netmodel.Duration(ms), nil
}

// LatencyTo measures the RTT to a peer by whichever tool answers: TCP-ping
// first (Azureus peers listen on 6881), then ping. This is the paper's
// "responded with a valid latency to either a TCP ping or a traceroute".
func (t *Tools) LatencyTo(from, to netmodel.HostID) (time.Duration, error) {
	if d, err := t.TCPPing(from, to); err == nil {
		return d, nil
	}
	if d, err := t.Ping(from, to); err == nil {
		return d, nil
	}
	return 0, ErrNoResponse
}

// TraceHop is one hop of a traceroute.
type TraceHop struct {
	// Router is the responding router, or netmodel.NoRouter for a '*' hop.
	Router netmodel.RouterID
	// RTT is the measured round-trip to this hop (zero for '*').
	RTT time.Duration
}

// Traceroute runs a route trace from `from` to `to`. The final entry is the
// destination host itself when it answers (Router == NoRouter but RTT set).
func (t *Tools) Traceroute(from, to netmodel.HostID) []TraceHop {
	path := t.Top.Path(from, to)
	hops := make([]TraceHop, 0, len(path)+1)
	for _, h := range path {
		if !h.Valid {
			hops = append(hops, TraceHop{Router: netmodel.NoRouter})
			continue
		}
		hops = append(hops, TraceHop{
			Router: h.Router,
			RTT:    netmodel.Duration(t.noisy(h.RTTms)),
		})
	}
	if t.Top.Host(to).RespondsPing {
		hops = append(hops, TraceHop{
			Router: netmodel.NoRouter,
			RTT:    netmodel.Duration(t.noisy(t.Top.TreeRTTms(from, to))),
		})
	}
	return hops
}

// UpstreamRouter returns the closest upstream router of `to` as seen from
// `from`: the last hop of the traceroute that answered (skipping the final
// destination entry). Returns NoRouter when the trace yields none.
func (t *Tools) UpstreamRouter(from, to netmodel.HostID) netmodel.RouterID {
	return t.Top.LastValidRouter(from, to)
}
