package measure

import (
	"time"

	"nearestpeer/internal/netmodel"
)

// King estimates the RTT between two recursive DNS servers a and b using
// the King technique (Gummadi et al., SIGCOMM 2002): the measurement host
// first measures its own RTT to a, then sends a a recursive query for a
// name that b is authoritative for; a forwards the query to b, and the
// difference of the two measurements estimates RTT(a, b).
//
// Failure modes reproduced from the paper:
//   - servers sharing a domain answer the query locally, so the technique
//     is unusable (ErrSameDomain);
//   - processing lag at the two name servers inflates the estimate, which
//     matters at millisecond-scale true latencies;
//   - the server-to-server packet takes the real Internet path, including
//     alternate paths that bypass the common upstream router — so at large
//     distances King undershoots tree-based predictions.
func (t *Tools) King(from, a, b netmodel.HostID) (time.Duration, error) {
	ha, hb := t.Top.Host(a), t.Top.Host(b)
	if ha.DNS == nil || !ha.DNS.Recursive || hb.DNS == nil {
		return 0, ErrNotDNS
	}
	if sharesDomain(ha.DNS, hb.DNS) {
		return 0, ErrSameDomain
	}
	// The estimate is the server-to-server RTT (true path, shortcuts and
	// all) plus the resolver lag at each server, observed with probe
	// jitter. The from→a leg cancels in the subtraction, so it does not
	// appear; `from` is kept in the signature because a real King
	// deployment issues both probes from the measurement host.
	_ = from
	lag := t.src.Exponential(t.cfg.KingLagMeanMs) + t.src.Exponential(t.cfg.KingLagMeanMs)
	if t.cfg.KingTailProb > 0 && t.src.Float64() < t.cfg.KingTailProb {
		lag += t.src.Exponential(t.cfg.KingTailMeanMs)
	}
	ms := t.noisy(t.Top.RTTms(a, b)) + lag
	return netmodel.Duration(ms), nil
}

func sharesDomain(a, b *netmodel.DNSServer) bool {
	for _, da := range a.Domains {
		for _, db := range b.Domains {
			if da == db {
				return true
			}
		}
	}
	return false
}

// SameDomain reports whether two hosts are DNS servers of one domain — the
// pairs the paper uses as a stand-in for "same end-network" in Figure 5.
func (t *Tools) SameDomain(a, b netmodel.HostID) bool {
	ha, hb := t.Top.Host(a), t.Top.Host(b)
	if ha.DNS == nil || hb.DNS == nil {
		return false
	}
	return sharesDomain(ha.DNS, hb.DNS)
}
