// Package meridian reimplements the Meridian closest-node search (Wong,
// Slivkins, Sirer — SIGCOMM 2005) as used by the paper's Section 4
// simulations: every overlay node organises its peers into concentric
// latency rings of bounded size, ring membership favours geometrically
// diverse ("high hypervolume") members, and a closest-node query walks the
// overlay by repeatedly probing ring members at about the target's distance
// and forwarding to whichever is closest, until no node improves on the
// current distance by the β threshold.
package meridian

import (
	"fmt"
	"math"
	"sort"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// RingSelection picks the strategy for trimming an over-full ring.
type RingSelection int

const (
	// SelectHypervolume keeps the subset spanning the largest polytope, the
	// Meridian paper's design, computed by a greedy forward selection on
	// latency-vector geometry (Gram determinant growth).
	SelectHypervolume RingSelection = iota
	// SelectMaxMin keeps a max-min-dispersion subset: a cheaper diversity
	// proxy with the same intent (and the same blindness under the
	// clustering condition).
	SelectMaxMin
	// SelectRandom keeps a uniformly random subset — the ablation baseline
	// that shows how much the diversity machinery buys.
	SelectRandom
)

func (s RingSelection) String() string {
	switch s {
	case SelectHypervolume:
		return "hypervolume"
	case SelectMaxMin:
		return "maxmin"
	case SelectRandom:
		return "random"
	default:
		return fmt.Sprintf("RingSelection(%d)", int(s))
	}
}

// Config parameterises a Meridian overlay. Defaults (DefaultConfig) follow
// the paper: 16 nodes per ring, β = 0.5.
type Config struct {
	// RingBase is the inner radius of ring 1 in milliseconds (ring 0
	// covers [0, RingBase)).
	RingBase float64
	// RingMult is the radius multiplier between consecutive rings.
	RingMult float64
	// NumRings bounds the ring count; the outermost ring extends to ∞.
	NumRings int
	// RingSize is the maximum number of members per ring (paper: 16).
	RingSize int
	// Beta is the query reduction threshold β (paper: 0.5): a query is
	// forwarded only to a node at least a factor β closer to the target.
	Beta float64
	// CandidatesPerNode is how many gossip-discovered peers each node
	// considers while filling its rings.
	CandidatesPerNode int
	// Selection is the ring-membership strategy.
	Selection RingSelection
}

// DefaultConfig returns the Section 4 simulation parameters.
func DefaultConfig() Config {
	return Config{
		RingBase:          1,
		RingMult:          2,
		NumRings:          9,
		RingSize:          16,
		Beta:              0.5,
		CandidatesPerNode: 192,
		Selection:         SelectHypervolume,
	}
}

// node is one Meridian overlay member.
type node struct {
	id    int
	rings [][]int // ring index -> member node ids
	// ringLat caches the measured latency from this node to each ring
	// member, id -> ms (maintenance measurements).
	ringLat map[int]float64
}

// Overlay is a Meridian overlay over a set of members.
type Overlay struct {
	cfg     Config
	net     *overlay.Network
	members []int
	nodes   map[int]*node
	src     *rng.Source
	// maxHops caps query forwarding as a loop backstop.
	maxHops int
}

// New builds a Meridian overlay: every member gossip-samples candidates,
// measures them, and installs them into rings with the configured
// membership selection. Construction probes are accounted as maintenance.
func New(net *overlay.Network, members []int, cfg Config, seed int64) *Overlay {
	if cfg.RingSize <= 0 || cfg.NumRings <= 0 || cfg.RingBase <= 0 || cfg.RingMult <= 1 {
		panic(fmt.Sprintf("meridian: invalid config %+v", cfg))
	}
	o := &Overlay{
		cfg:     cfg,
		net:     net,
		members: append([]int(nil), members...),
		nodes:   make(map[int]*node, len(members)),
		src:     rng.New(seed),
		maxHops: 64,
	}
	for _, id := range members {
		o.nodes[id] = &node{
			id:      id,
			rings:   make([][]int, cfg.NumRings),
			ringLat: make(map[int]float64),
		}
	}
	for _, id := range members {
		o.fillRings(o.nodes[id])
	}
	return o
}

// ringIndex maps a latency to its ring.
func (o *Overlay) ringIndex(ms float64) int {
	if ms < o.cfg.RingBase {
		return 0
	}
	i := 1 + int(math.Log(ms/o.cfg.RingBase)/math.Log(o.cfg.RingMult))
	if i >= o.cfg.NumRings {
		i = o.cfg.NumRings - 1
	}
	return i
}

// fillRings populates one node's rings from a gossip sample of members.
func (o *Overlay) fillRings(n *node) {
	sample := o.gossipSample(n.id)
	byRing := make([][]int, o.cfg.NumRings)
	for _, c := range sample {
		l := o.net.MaintProbe(n.id, c)
		n.ringLat[c] = l
		r := o.ringIndex(l)
		byRing[r] = append(byRing[r], c)
	}
	for r, cands := range byRing {
		if len(cands) <= o.cfg.RingSize {
			n.rings[r] = cands
			continue
		}
		n.rings[r] = o.selectRing(n, cands)
	}
}

// gossipSample returns the candidate set a node discovers. With a small
// population the node knows everyone; with a large one it sees a uniform
// sample, as Meridian's gossip protocol provides.
func (o *Overlay) gossipSample(self int) []int {
	if len(o.members)-1 <= o.cfg.CandidatesPerNode {
		out := make([]int, 0, len(o.members)-1)
		for _, m := range o.members {
			if m != self {
				out = append(out, m)
			}
		}
		return out
	}
	seen := make(map[int]bool, o.cfg.CandidatesPerNode)
	out := make([]int, 0, o.cfg.CandidatesPerNode)
	for len(out) < o.cfg.CandidatesPerNode {
		c := o.members[o.src.Intn(len(o.members))]
		if c == self || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// maxSelectionPool caps the candidate pool diversity selection works over;
// beyond this the extra pairwise probing buys nothing.
const maxSelectionPool = 64

// selectRing trims an over-full candidate list to RingSize members.
func (o *Overlay) selectRing(n *node, cands []int) []int {
	k := o.cfg.RingSize
	if len(cands) > maxSelectionPool {
		perm := o.src.Perm(len(cands))
		pool := make([]int, maxSelectionPool)
		for i := range pool {
			pool[i] = cands[perm[i]]
		}
		cands = pool
	}
	switch o.cfg.Selection {
	case SelectRandom:
		perm := o.src.Perm(len(cands))
		out := make([]int, k)
		for i := 0; i < k; i++ {
			out[i] = cands[perm[i]]
		}
		return out
	case SelectMaxMin:
		return o.maxMinSubset(n, cands, k)
	default:
		return o.hypervolumeSubset(cands, k)
	}
}

// candCache memoises pairwise latencies among a small candidate pool with a
// dense index (selection is quadratic in the pool, so map overhead would
// dominate otherwise). A negative entry means "not yet measured".
type candCache struct {
	o     *Overlay
	index map[int]int // node id -> pool index
	lat   []float64   // pool×pool, -1 when unmeasured
	n     int
}

func (o *Overlay) newCandCache(cands []int) *candCache {
	c := &candCache{o: o, index: make(map[int]int, len(cands)), n: len(cands)}
	for i, id := range cands {
		c.index[id] = i
	}
	c.lat = make([]float64, len(cands)*len(cands))
	for i := range c.lat {
		c.lat[i] = -1
	}
	return c
}

// get measures (as maintenance, once) the latency between two candidates.
func (c *candCache) get(a, b int) float64 {
	if a == b {
		return 0
	}
	i, j := c.index[a], c.index[b]
	if v := c.lat[i*c.n+j]; v >= 0 {
		return v
	}
	v := c.o.net.MaintProbe(a, b)
	c.lat[i*c.n+j] = v
	c.lat[j*c.n+i] = v
	return v
}

// maxMinSubset greedily selects k candidates maximising the minimum
// pairwise latency (a k-dispersion diversity proxy for hypervolume).
func (o *Overlay) maxMinSubset(n *node, cands []int, k int) []int {
	cache := o.newCandCache(cands)
	// Seed with the candidate farthest from the owning node.
	best := 0
	for i := 1; i < len(cands); i++ {
		if n.ringLat[cands[i]] > n.ringLat[cands[best]] {
			best = i
		}
	}
	selected := []int{cands[best]}
	remaining := append([]int(nil), cands[:best]...)
	remaining = append(remaining, cands[best+1:]...)
	for len(selected) < k && len(remaining) > 0 {
		bestIdx, bestScore := -1, -1.0
		for i, c := range remaining {
			minD := math.Inf(1)
			for _, s := range selected {
				if d := cache.get(c, s); d < minD {
					minD = d
				}
			}
			if minD > bestScore {
				bestScore, bestIdx = minD, i
			}
		}
		selected = append(selected, remaining[bestIdx])
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return selected
}

// hypervolumeSubset greedily selects k candidates spanning the largest
// polytope. Each candidate is represented by its latency vector to the
// already-selected members; the candidate whose vector lies farthest from
// the affine span of the selected set (Gram–Schmidt residual) adds the most
// volume. Under the clustering condition all residuals are nearly equal —
// the geometric fact the paper exploits — so the choice degenerates
// gracefully to arbitrary.
func (o *Overlay) hypervolumeSubset(cands []int, k int) []int {
	cache := o.newCandCache(cands)

	// Start with the farthest pair (exact farthest pair costs O(c²)
	// probes; Meridian's gossip budget is similar, and the pool is capped).
	bestI, bestJ, bestD := 0, 1, -1.0
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if d := cache.get(cands[i], cands[j]); d > bestD {
				bestI, bestJ, bestD = i, j, d
			}
		}
	}
	selected := []int{cands[bestI], cands[bestJ]}
	used := map[int]bool{cands[bestI]: true, cands[bestJ]: true}

	// Gram–Schmidt residual selection: coordinates of candidate c are its
	// latencies to the selected members.
	for len(selected) < k {
		dim := len(selected)
		// Build the selected members' own coordinate rows.
		rows := make([][]float64, dim)
		for i, s := range selected {
			rows[i] = make([]float64, dim)
			for j, s2 := range selected {
				rows[i][j] = cache.get(s, s2)
			}
		}
		basis := orthonormalBasis(rows)
		bestIdx, bestRes := -1, -1.0
		v := make([]float64, dim)
		scratch := make([]float64, dim)
		for _, c := range cands {
			if used[c] {
				continue
			}
			for j, s := range selected {
				v[j] = cache.get(c, s)
			}
			res := residualNormInto(scratch, v, rows[0], basis)
			if res > bestRes {
				bestRes, bestIdx = res, c
			}
		}
		if bestIdx < 0 {
			break
		}
		selected = append(selected, bestIdx)
		used[bestIdx] = true
	}
	return selected
}

// orthonormalBasis builds an orthonormal basis of the affine span of rows
// (differences against rows[0]).
func orthonormalBasis(rows [][]float64) [][]float64 {
	var basis [][]float64
	for i := 1; i < len(rows); i++ {
		v := sub(rows[i], rows[0])
		for _, b := range basis {
			v = sub(v, scale(b, dot(v, b)))
		}
		if n := norm(v); n > 1e-9 {
			basis = append(basis, scale(v, 1/n))
		}
	}
	return basis
}

// residualNormInto computes the distance of v from the affine span through
// origin with the given orthonormal basis, using scratch (len(v)) as the
// working buffer to stay allocation-free in the selection hot loop.
func residualNormInto(scratch, v, origin []float64, basis [][]float64) float64 {
	for i := range v {
		scratch[i] = v[i] - origin[i]
	}
	for _, b := range basis {
		p := dot(scratch, b)
		for i := range scratch {
			scratch[i] -= p * b[i]
		}
	}
	return norm(scratch)
}

func sub(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

func scale(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// FindNearest runs a Meridian closest-node query for target, starting at a
// random member. It implements the paper's description: the current node
// measures its distance d to the target, asks ring members at about that
// distance (within (1±β)·d) to probe the target, and forwards the query to
// the closest reporting node provided it improves d by at least a factor β;
// otherwise the query stops with the best node seen.
func (o *Overlay) FindNearest(target int) overlay.Result {
	start := o.members[o.src.Intn(len(o.members))]
	return o.findFrom(start, target)
}

func (o *Overlay) findFrom(start, target int) overlay.Result {
	cur := start
	visited := map[int]bool{cur: true, target: true}
	var probes int64
	hops := 0

	// The query can start at the searcher itself (it is a member too): its
	// rings still steer the first hop, but it is not a candidate and costs
	// no probe.
	d := math.Inf(1)
	bestID, bestLat := -1, d
	if cur != target {
		d = o.net.Probe(cur, target)
		probes++
		bestID, bestLat = cur, d
	}

	for hops < o.maxHops {
		n := o.nodes[cur]
		lo, hi := (1-o.cfg.Beta)*d, (1+o.cfg.Beta)*d

		// Collect ring members at about the target's distance. With no
		// distance estimate yet (the query started at the searcher itself)
		// every ring member is a candidate.
		var cands []int
		for _, ring := range n.rings {
			for _, m := range ring {
				if l := n.ringLat[m]; (math.IsInf(d, 1) || (l >= lo && l <= hi)) && !visited[m] {
					cands = append(cands, m)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Ints(cands) // determinism

		minID, minLat := -1, math.Inf(1)
		for _, c := range cands {
			l := o.net.Probe(c, target)
			probes++
			if l < minLat {
				minID, minLat = c, l
			}
			if l < bestLat {
				bestID, bestLat = c, l
			}
		}
		// β acceptance: forward only on a sufficient improvement.
		if minID < 0 || minLat > o.cfg.Beta*d {
			break
		}
		cur = minID
		visited[cur] = true
		d = minLat
		hops++
	}
	return overlay.Result{Peer: bestID, LatencyMs: bestLat, Probes: probes, Hops: hops}
}

// Members returns the overlay membership (for tests and experiments).
func (o *Overlay) Members() []int { return o.members }

// RingsOf exposes a member's rings (for tests).
func (o *Overlay) RingsOf(id int) [][]int { return o.nodes[id].rings }

// RingLatOf exposes a member's measured latency to a ring member (tests).
func (o *Overlay) RingLatOf(id, member int) (float64, bool) {
	l, ok := o.nodes[id].ringLat[member]
	return l, ok
}
