package meridian

import (
	"math"
	"testing"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// euclideanMatrix builds a well-behaved (doubling) latency space: points
// uniform in a 2-D box, latency = distance. Meridian should excel here.
func euclideanMatrix(n int, seed int64) *latency.Dense {
	src := rng.New(seed)
	xs := make([][2]float64, n)
	for i := range xs {
		xs[i] = [2]float64{src.Uniform(0, 100), src.Uniform(0, 100)}
	}
	m := latency.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i][0]-xs[j][0], xs[i][1]-xs[j][1]
			m.Set(i, j, math.Hypot(dx, dy)+0.01)
		}
	}
	return m
}

func TestRingIndex(t *testing.T) {
	o := &Overlay{cfg: DefaultConfig()}
	cases := []struct {
		ms   float64
		want int
	}{
		{0.05, 0}, {0.99, 0}, {1, 1}, {1.9, 1}, {2, 2}, {3.9, 2},
		{4, 3}, {250, 8}, {1e6, 8},
	}
	for _, c := range cases {
		if got := o.ringIndex(c.ms); got != c.want {
			t.Errorf("ringIndex(%v) = %d, want %d", c.ms, got, c.want)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.RingSize = 0
	New(overlay.NewNetwork(latency.NewDense(4)), []int{0, 1, 2}, cfg, 1)
}

func TestRingInvariants(t *testing.T) {
	m := euclideanMatrix(300, 1)
	net := overlay.NewNetwork(m)
	members, _ := overlay.Split(300, 20, 2)
	cfg := DefaultConfig()
	o := New(net, members, cfg, 3)

	for _, id := range members {
		rings := o.RingsOf(id)
		if len(rings) != cfg.NumRings {
			t.Fatalf("node %d has %d rings", id, len(rings))
		}
		for r, ring := range rings {
			if len(ring) > cfg.RingSize {
				t.Fatalf("node %d ring %d holds %d members", id, r, len(ring))
			}
			for _, mbr := range ring {
				if mbr == id {
					t.Fatalf("node %d is a member of its own ring", id)
				}
				l, ok := o.RingLatOf(id, mbr)
				if !ok {
					t.Fatalf("node %d has no cached latency to ring member %d", id, mbr)
				}
				if got := o.ringIndex(l); got != r {
					t.Fatalf("node %d ring %d member at latency %v belongs in ring %d", id, r, l, got)
				}
			}
		}
	}
}

func TestFindNearestEuclidean(t *testing.T) {
	// In a doubling space Meridian should find the exact nearest node in a
	// large majority of queries and land very close otherwise.
	const n = 400
	m := euclideanMatrix(n, 7)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(n, 40, 5)
	o := New(net, members, DefaultConfig(), 9)

	exact, total := 0, 0
	var stretchSum float64
	for _, tgt := range targets {
		res := o.FindNearest(tgt)
		oracle := overlay.TrueNearest(m, tgt, members)
		total++
		if res.Peer == oracle.Peer {
			exact++
		}
		stretchSum += res.LatencyMs / math.Max(oracle.LatencyMs, 1e-9)
		if res.Probes <= 0 {
			t.Fatal("query issued no probes")
		}
	}
	if frac := float64(exact) / float64(total); frac < 0.6 {
		t.Fatalf("exact-nearest rate in Euclidean space = %v, want >= 0.6", frac)
	}
	if avg := stretchSum / float64(total); avg > 2.5 {
		t.Fatalf("average stretch %v too large", avg)
	}
}

func TestClusteringDegradesExactAccuracy(t *testing.T) {
	// The paper's headline (its Figure 8): accuracy peaks at moderate
	// cluster sizes (~25 end-networks) and collapses once the clustering
	// condition bites (125-250 end-networks per cluster), while the
	// probability of landing in the correct cluster stays high.
	run := func(ens, nQueries int) (exactRate, clusterRate float64) {
		cfg := latency.DefaultClusteredConfig()
		cfg.ENsPerCluster = ens
		cfg.TotalPeers = 1500
		m, gt := latency.BuildClustered(cfg, 21)
		net := overlay.NewNetwork(m)
		members, targets := overlay.Split(m.N(), 60, 13)
		o := New(net, members, DefaultConfig(), 17)
		exact, inCluster := 0, 0
		for q := 0; q < nQueries; q++ {
			tgt := targets[q%len(targets)]
			res := o.FindNearest(tgt)
			oracle := overlay.TrueNearest(m, tgt, members)
			if res.Peer == oracle.Peer {
				exact++
			}
			if gt.SameCluster(res.Peer, tgt) {
				inCluster++
			}
		}
		return float64(exact) / float64(nQueries), float64(inCluster) / float64(nQueries)
	}
	exactPeak, _ := run(25, 120)
	exactLarge, clusterLarge := run(250, 120)
	if exactLarge >= exactPeak {
		t.Fatalf("clustering condition did not degrade accuracy: peak=%v large=%v",
			exactPeak, exactLarge)
	}
	if exactLarge > 0.4 {
		t.Fatalf("exact rate under strong clustering = %v, expected low", exactLarge)
	}
	if clusterLarge < 0.5 {
		t.Fatalf("correct-cluster rate = %v, expected high with big clusters", clusterLarge)
	}
}

func TestQueryTerminates(t *testing.T) {
	m := euclideanMatrix(150, 3)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(150, 10, 1)
	o := New(net, members, DefaultConfig(), 2)
	for _, tgt := range targets {
		res := o.FindNearest(tgt)
		if res.Hops >= o.maxHops {
			t.Fatalf("query hit the hop cap (%d hops)", res.Hops)
		}
		if res.Peer < 0 {
			t.Fatal("query returned no peer")
		}
	}
}

func TestProbeAccounting(t *testing.T) {
	m := euclideanMatrix(200, 4)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(200, 10, 1)
	o := New(net, members, DefaultConfig(), 2)
	if net.MaintProbes() == 0 {
		t.Fatal("overlay construction recorded no maintenance probes")
	}
	net.ResetQueryProbes()
	res := o.FindNearest(targets[0])
	if net.QueryProbes() != res.Probes {
		t.Fatalf("network counted %d probes, result says %d", net.QueryProbes(), res.Probes)
	}
}

func TestSelectionStrategies(t *testing.T) {
	// All three ring-selection strategies must produce valid overlays and
	// answer queries; diversity selection should not be worse than random
	// in a Euclidean space (soft check: both complete, exactness sane).
	m := euclideanMatrix(300, 11)
	for _, sel := range []RingSelection{SelectHypervolume, SelectMaxMin, SelectRandom} {
		cfg := DefaultConfig()
		cfg.Selection = sel
		net := overlay.NewNetwork(m)
		members, targets := overlay.Split(300, 20, 3)
		o := New(net, members, cfg, 5)
		ok := 0
		for _, tgt := range targets {
			res := o.FindNearest(tgt)
			oracle := overlay.TrueNearest(m, tgt, members)
			if res.LatencyMs <= 3*oracle.LatencyMs+1 {
				ok++
			}
		}
		if ok < len(targets)/2 {
			t.Fatalf("selection %v: only %d/%d queries near-optimal", sel, ok, len(targets))
		}
	}
}

func TestSelectionStrategyStrings(t *testing.T) {
	if SelectHypervolume.String() != "hypervolume" ||
		SelectMaxMin.String() != "maxmin" ||
		SelectRandom.String() != "random" {
		t.Fatal("RingSelection strings wrong")
	}
}

func TestBetaControlsProbes(t *testing.T) {
	// Smaller β terminates earlier: average probes should not increase
	// when β shrinks from 0.9 to 0.3.
	m := euclideanMatrix(400, 19)
	probesAt := func(beta float64) float64 {
		cfg := DefaultConfig()
		cfg.Beta = beta
		net := overlay.NewNetwork(m)
		members, targets := overlay.Split(400, 30, 3)
		o := New(net, members, cfg, 5)
		var sum int64
		for _, tgt := range targets {
			sum += o.FindNearest(tgt).Probes
		}
		return float64(sum) / float64(len(targets))
	}
	small, large := probesAt(0.3), probesAt(0.9)
	if small > large*1.5 {
		t.Fatalf("β=0.3 used %v probes vs β=0.9 %v; expected fewer or similar", small, large)
	}
}
