package meridian

import (
	"testing"

	"nearestpeer/internal/overlay"
)

func BenchmarkOverlayBuild(b *testing.B) {
	m := euclideanMatrix(400, 1)
	members, _ := overlay.Split(400, 20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(overlay.NewNetwork(m), members, DefaultConfig(), int64(i))
	}
}

func BenchmarkFindNearest(b *testing.B) {
	m := euclideanMatrix(400, 1)
	members, targets := overlay.Split(400, 20, 2)
	o := New(overlay.NewNetwork(m), members, DefaultConfig(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.FindNearest(targets[i%len(targets)])
	}
}

func BenchmarkHypervolumeSelection(b *testing.B) {
	m := euclideanMatrix(80, 1)
	net := overlay.NewNetwork(m)
	members := make([]int, 80)
	for i := range members {
		members[i] = i
	}
	o := &Overlay{cfg: DefaultConfig(), net: net}
	cands := members[1:65]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.hypervolumeSubset(cands, 16)
	}
}
