// Package compaddr implements the composite proximity addresses the paper
// proposes at the end of Section 5: a latency-based proximity address (a
// network coordinate) extended with the peer's UCL. "When comparing two
// such composite addresses, if the UCL indicates that the nodes share an
// upstream router, then the nodes are considered to be close together and
// the proximity address may be ignored. If the two nodes do not share an
// upstream router, then the UCL is ignored."
//
// This turns the UCL into a drop-in upgrade for any coordinate system
// (Vivaldi, PIC, GNP): coordinate comparisons stay cheap and scalable,
// while same-extended-LAN peers — invisible to coordinates under the
// clustering condition — become exactly identifiable.
package compaddr

import (
	"sort"

	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/ucl"
	"nearestpeer/internal/vivaldi"
)

// Address is a composite proximity address.
type Address struct {
	// Coord is the latency-based proximity address.
	Coord *vivaldi.Coord
	// UCL lists the peer's upstream routers with its RTT to each.
	UCL []ucl.Published
}

// New assembles a composite address.
func New(coord *vivaldi.Coord, uclEntries []ucl.Published) Address {
	return Address{Coord: coord, UCL: uclEntries}
}

// SharedRouter reports whether two addresses share an upstream router, and
// if so the latency estimate through the closest shared one (the sum of the
// two sides' RTTs to it).
func SharedRouter(a, b Address) (netmodel.RouterID, float64, bool) {
	byRouter := make(map[netmodel.RouterID]float64, len(a.UCL))
	for _, p := range a.UCL {
		if old, ok := byRouter[p.Router]; !ok || p.Entry.RTTms < old {
			byRouter[p.Router] = p.Entry.RTTms
		}
	}
	best := netmodel.NoRouter
	bestEst := 0.0
	for _, p := range b.UCL {
		if aRTT, ok := byRouter[p.Router]; ok {
			est := aRTT + p.Entry.RTTms
			if best == netmodel.NoRouter || est < bestEst {
				best, bestEst = p.Router, est
			}
		}
	}
	return best, bestEst, best != netmodel.NoRouter
}

// DistanceMs predicts the RTT between two composite addresses: the
// UCL-derived estimate when the nodes share an upstream router, the
// coordinate distance otherwise.
func DistanceMs(a, b Address) float64 {
	if _, est, ok := SharedRouter(a, b); ok {
		return est
	}
	return a.Coord.DistanceMs(b.Coord)
}

// Nearest ranks candidate addresses by composite distance to a and returns
// the indices of the k best (shared-router candidates first, then by
// predicted distance) — the selection a coordinate-based system would run,
// upgraded.
func Nearest(a Address, candidates []Address, k int) []int {
	type scored struct {
		idx    int
		shared bool
		dist   float64
	}
	out := make([]scored, 0, len(candidates))
	for i, c := range candidates {
		_, est, ok := SharedRouter(a, c)
		d := est
		if !ok {
			d = a.Coord.DistanceMs(c.Coord)
		}
		out = append(out, scored{idx: i, shared: ok, dist: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].shared != out[j].shared {
			return out[i].shared
		}
		if out[i].dist != out[j].dist {
			return out[i].dist < out[j].dist
		}
		return out[i].idx < out[j].idx
	})
	if k > len(out) {
		k = len(out)
	}
	idxs := make([]int, k)
	for i := 0; i < k; i++ {
		idxs[i] = out[i].idx
	}
	return idxs
}
