package compaddr

import (
	"testing"

	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/ucl"
	"nearestpeer/internal/vivaldi"
)

func coordAt(x float64) *vivaldi.Coord {
	c := vivaldi.NewCoord(2)
	c.Vec[0] = x
	return c
}

func pub(r netmodel.RouterID, rtt float64) ucl.Published {
	return ucl.Published{Router: r, Entry: ucl.Entry{RTTms: rtt}}
}

func TestSharedRouterPicksClosest(t *testing.T) {
	a := New(coordAt(0), []ucl.Published{pub(1, 2), pub(2, 0.5)})
	b := New(coordAt(50), []ucl.Published{pub(2, 0.7), pub(1, 3)})
	r, est, ok := SharedRouter(a, b)
	if !ok {
		t.Fatal("shared router missed")
	}
	if r != 2 || est != 1.2 {
		t.Fatalf("got router %d est %v, want router 2 est 1.2", r, est)
	}
}

func TestSharedRouterAbsent(t *testing.T) {
	a := New(coordAt(0), []ucl.Published{pub(1, 2)})
	b := New(coordAt(50), []ucl.Published{pub(9, 3)})
	if _, _, ok := SharedRouter(a, b); ok {
		t.Fatal("false shared router")
	}
}

func TestDistanceUsesUCLWhenShared(t *testing.T) {
	// Coordinates say 50 ms apart; the shared router says 1.2 ms. The
	// composite must believe the UCL — "the proximity address may be
	// ignored".
	a := New(coordAt(0), []ucl.Published{pub(2, 0.5)})
	b := New(coordAt(50), []ucl.Published{pub(2, 0.7)})
	if d := DistanceMs(a, b); d != 1.2 {
		t.Fatalf("distance %v, want UCL estimate 1.2", d)
	}
}

func TestDistanceFallsBackToCoords(t *testing.T) {
	a := New(coordAt(0), []ucl.Published{pub(1, 2)})
	b := New(coordAt(30), []ucl.Published{pub(9, 3)})
	want := a.Coord.DistanceMs(b.Coord)
	if d := DistanceMs(a, b); d != want {
		t.Fatalf("distance %v, want coordinate %v", d, want)
	}
}

func TestNearestPrefersSharedRouter(t *testing.T) {
	// Candidate 0: coordinate-near but no shared router. Candidate 1:
	// coordinate-far but shares an upstream router (the same-LAN case the
	// clustering condition hides from coordinates).
	me := New(coordAt(0), []ucl.Published{pub(7, 0.1)})
	cands := []Address{
		New(coordAt(1), []ucl.Published{pub(9, 1)}),
		New(coordAt(40), []ucl.Published{pub(7, 0.2)}),
	}
	got := Nearest(me, cands, 2)
	if got[0] != 1 {
		t.Fatalf("nearest = %v, want shared-router candidate first", got)
	}
}

func TestNearestBounded(t *testing.T) {
	me := New(coordAt(0), nil)
	cands := []Address{New(coordAt(1), nil), New(coordAt(2), nil)}
	if got := Nearest(me, cands, 5); len(got) != 2 {
		t.Fatalf("k clamp failed: %v", got)
	}
	if got := Nearest(me, cands, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ranking wrong: %v", got)
	}
}

// TestEndToEndOverTopology: composite addresses built from real topology
// UCLs identify same-EN peers that Vivaldi coordinates alone cannot.
func TestEndToEndOverTopology(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 51)
	// Two hosts in one EN plus one in a different PoP.
	var a, b netmodel.HostID = -1, -1
	for i := range top.ENs {
		en := &top.ENs[i]
		if !en.IsHome && len(en.Hosts) >= 2 {
			edge := en.EdgeRouter()
			if edge != netmodel.NoRouter && !top.Router(edge).Anonymous {
				a, b = en.Hosts[0], en.Hosts[1]
				break
			}
		}
	}
	if a < 0 {
		t.Skip("no suitable EN")
	}
	edge := top.HostEN(a).EdgeRouter()
	mk := func(h netmodel.HostID, coordX float64) Address {
		return New(coordAt(coordX), []ucl.Published{
			pub(edge, top.RouterRTTms(h, edge)),
		})
	}
	// Under the clustering condition both get nearly identical coords;
	// give them identical ones to model the collapse exactly.
	addrA, addrB := mk(a, 10), mk(b, 10)
	_, est, ok := SharedRouter(addrA, addrB)
	if !ok {
		t.Fatal("same-EN pair shares no router")
	}
	truth := top.RTTms(a, b)
	if est < truth*0.2 || est > truth*5+1 {
		t.Fatalf("UCL estimate %v vs truth %v", est, truth)
	}
}
