package netmodel

import (
	"fmt"
	"net/netip"
)

// IPv4 is an IPv4 address stored as a big-endian uint32. The address plan
// matters to this reproduction because Section 5's IP-prefix heuristic keys
// the DHT on fixed-length prefixes of peer addresses; false-positive and
// false-negative rates (Figure 11) are entirely a function of how ISPs
// scatter address blocks across PoPs.
type IPv4 uint32

// Addr converts to a netip.Addr for formatting and interop.
func (ip IPv4) Addr() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
}

// String renders dotted-quad.
func (ip IPv4) String() string { return ip.Addr().String() }

// Prefix returns the address masked to the first bits bits.
func (ip IPv4) Prefix(bits int) IPv4 {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ip
	}
	return ip &^ (1<<(32-uint(bits)) - 1)
}

// SharesPrefix reports whether two addresses agree on their first bits bits.
func (ip IPv4) SharesPrefix(other IPv4, bits int) bool {
	return ip.Prefix(bits) == other.Prefix(bits)
}

// IPBlock is a CIDR block: a base address and a prefix length.
type IPBlock struct {
	Base IPv4
	Bits int
}

// Contains reports whether addr falls inside the block.
func (b IPBlock) Contains(addr IPv4) bool {
	return addr.Prefix(b.Bits) == b.Base.Prefix(b.Bits)
}

// Size returns the number of addresses in the block.
func (b IPBlock) Size() uint64 {
	return 1 << (32 - uint(b.Bits))
}

// Nth returns the n-th address in the block. It panics if n is out of range.
func (b IPBlock) Nth(n uint64) IPv4 {
	if n >= b.Size() {
		panic(fmt.Sprintf("netmodel: address index %d out of range for %v", n, b))
	}
	return b.Base.Prefix(b.Bits) + IPv4(n)
}

// SubBlock returns the i-th sub-block of the given (longer) prefix length.
func (b IPBlock) SubBlock(bits int, i uint64) IPBlock {
	if bits < b.Bits || bits > 32 {
		panic(fmt.Sprintf("netmodel: sub-block bits %d invalid for /%d", bits, b.Bits))
	}
	count := uint64(1) << uint(bits-b.Bits)
	if i >= count {
		panic(fmt.Sprintf("netmodel: sub-block index %d out of range (have %d)", i, count))
	}
	return IPBlock{Base: b.Base.Prefix(b.Bits) + IPv4(i<<(32-uint(bits))), Bits: bits}
}

// String renders CIDR notation.
func (b IPBlock) String() string {
	return fmt.Sprintf("%s/%d", b.Base.Prefix(b.Bits), b.Bits)
}
