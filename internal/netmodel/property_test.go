package netmodel

import (
	"testing"
	"testing/quick"
)

// TestPathRTTsMonotone: along any traceroute path, per-hop tree RTTs never
// decrease (it is a tree walk away from the source).
func TestPathRTTsMonotone(t *testing.T) {
	top := Generate(DefaultConfig(), 5)
	n := len(top.Hosts)
	err := quick.Check(func(aRaw, bRaw uint32) bool {
		a := HostID(int(aRaw) % n)
		b := HostID(int(bRaw) % n)
		if a == b {
			return true
		}
		prev := 0.0
		for _, hop := range top.Path(a, b) {
			if hop.RTTms < prev-1e-9 {
				return false
			}
			prev = hop.RTTms
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTriangleViaHub: for two hosts on one PoP, the tree latency never
// exceeds the sum of their hub latencies plus LAN terms — the star-routing
// upper bound of Section 2.
func TestTriangleViaHub(t *testing.T) {
	top := Generate(DefaultConfig(), 5)
	checked := 0
	for i := 0; i < len(top.Hosts) && checked < 2000; i += 3 {
		for j := i + 1; j < len(top.Hosts) && checked < 2000; j += 7 {
			a, b := HostID(i), HostID(j)
			if top.SameEN(a, b) || !top.SamePoPCluster(a, b) {
				continue
			}
			ha, hb := top.Host(a), top.Host(b)
			ea, eb := top.HostEN(a), top.HostEN(b)
			bound := ha.LANLatMs + ea.HubLatMs + eb.HubLatMs + hb.LANLatMs
			if got := top.TreeOneWayMs(a, b); got > bound+1e-9 {
				t.Fatalf("tree latency %v exceeds via-hub bound %v", got, bound)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no same-PoP pairs checked")
	}
}

// TestCommonChainDepthSymmetric: the shared-prefix depth of two access
// chains does not depend on argument order, and equals the chain length for
// an EN against itself.
func TestCommonChainDepthSymmetric(t *testing.T) {
	top := Generate(DefaultConfig(), 5)
	for i := 0; i+1 < len(top.ENs) && i < 400; i += 2 {
		a, b := &top.ENs[i], &top.ENs[i+1]
		if commonChainDepth(a, b) != commonChainDepth(b, a) {
			t.Fatal("commonChainDepth asymmetric")
		}
		if commonChainDepth(a, a) != len(a.Chain) {
			t.Fatal("self depth wrong")
		}
	}
}

// TestShortcutDeterministic: the alternate-path decision for a pair is a
// pure function of the topology seed and the pair.
func TestShortcutDeterministic(t *testing.T) {
	top := Generate(DefaultConfig(), 5)
	n := len(top.Hosts)
	for trial := 0; trial < 200; trial++ {
		a := HostID((trial * 37) % n)
		b := HostID((trial*101 + 5) % n)
		if top.RTTms(a, b) != top.RTTms(a, b) {
			t.Fatal("RTT not stable across calls")
		}
	}
}

// TestHubLatenciesSymmetric: PoP-pair latencies form a symmetric matrix
// with zero diagonal and positive off-diagonals.
func TestHubLatenciesSymmetric(t *testing.T) {
	top := Generate(DefaultConfig(), 5)
	h := top.hubLat
	for i := 0; i < len(top.PoPs); i++ {
		if h.oneWay(PoPID(i), PoPID(i)) != 0 {
			t.Fatal("nonzero diagonal")
		}
		for j := i + 1; j < len(top.PoPs); j++ {
			a, b := PoPID(i), PoPID(j)
			if h.oneWay(a, b) != h.oneWay(b, a) {
				t.Fatal("hub latencies asymmetric")
			}
			if h.oneWay(a, b) <= 0 {
				t.Fatalf("non-positive hub latency between %d and %d", i, j)
			}
		}
	}
}
