package netmodel

import (
	"math"
	"time"
)

// This file implements the routing model: one-way latencies between any two
// attachment points, the router-level forward path (what traceroute sees),
// and the alternate-path ("shortcut") model responsible for the paper's
// observation that measured latencies undershoot tree-predicted latencies at
// large distances (Section 3.1, Figure 4).

// Hop is one traceroute hop.
type Hop struct {
	Router RouterID
	// RTTms is the round-trip time from the path source to this hop along
	// the tree path, in milliseconds, without measurement noise (the
	// measure package adds noise).
	RTTms float64
	// Valid is false when the router is anonymous (the hop shows '*').
	Valid bool
}

// hubLatencies precomputes the one-way latency between every pair of PoP
// core router sets.
type hubLatencies struct {
	n   int
	lat []float64 // n*n, one-way ms
}

func (h *hubLatencies) oneWay(a, b PoPID) float64 {
	return h.lat[int(a)*h.n+int(b)]
}

// shortcutModel decides, deterministically per unordered host pair, whether
// an alternate path shorter than the routing-tree path exists, and by what
// factor. The probability of a shortcut grows with the tree latency: nearby
// pairs essentially always traverse the common upstream router (the paper's
// validated assumption), while distant, well-connected pairs often have
// shorter alternatives.
type shortcutModel struct {
	seed     int64
	onsetMs  float64 // below this tree one-way latency no distance-driven shortcuts exist
	fullMs   float64 // latency at which the shortcut probability saturates
	maxProb  float64
	baseProb float64 // distance-independent local shortcuts (peering, IXPs)
	minFact  float64
	maxFact  float64
}

// factor returns the multiplicative factor (<= 1) the true latency bears to
// the tree latency for the pair (a, b) whose tree one-way latency is trMs.
func (s *shortcutModel) factor(a, b HostID, trMs float64) float64 {
	if trMs <= 1 || (s.maxProb <= 0 && s.baseProb <= 0) {
		return 1
	}
	p := s.baseProb
	if trMs > s.onsetMs {
		p += s.maxProb * (trMs - s.onsetMs) / (s.fullMs - s.onsetMs)
	}
	if p > s.maxProb+s.baseProb {
		p = s.maxProb + s.baseProb
	}
	if a > b {
		a, b = b, a
	}
	h := pairHash(s.seed, int64(a), int64(b))
	// First 32 bits decide existence, next bits decide the factor.
	if float64(h&0xFFFFFFFF)/float64(1<<32) >= p {
		return 1
	}
	u := float64((h>>32)&0xFFFFFF) / float64(1<<24)
	return s.minFact + (s.maxFact-s.minFact)*u
}

// pairHash is splitmix64 over a seed and two IDs.
func pairHash(seed, a, b int64) uint64 {
	x := uint64(seed) ^ uint64(a)*0x9E3779B97F4A7C15 ^ uint64(b)*0xC2B2AE3D27D4EB4F
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// commonChainDepth returns the length of the shared prefix of two access
// chains (the chains are trees rooted at the PoP core, so a shared prefix is
// exactly a shared upstream path).
func commonChainDepth(a, b *EndNetwork) int {
	n := len(a.Chain)
	if len(b.Chain) < n {
		n = len(b.Chain)
	}
	i := 0
	for i < n && a.Chain[i] == b.Chain[i] {
		i++
	}
	return i
}

// TreeOneWayMs returns the one-way latency in milliseconds between two hosts
// along the routing tree (always via the deepest common router / the PoP
// hub / the backbone), ignoring alternate paths.
//
// This is the pricing hot path: it reads the flat per-host table (see
// hotpath.go) instead of the Host/EndNetwork structs, and only falls back
// to the chain walk in the rare same-PoP/different-EN case. Every branch
// reproduces the struct walk's floating-point operation order exactly
// (toCore[a] is precomputed as lan[a]+hub[a], the prefix of the original
// left-to-right sum), so the flattening cannot change a figure byte.
func (t *Topology) TreeOneWayMs(a, b HostID) float64 {
	if a == b {
		return 0
	}
	if a > b {
		// Canonical argument order keeps the floating-point sum identical
		// in both directions, so RTT is exactly symmetric.
		a, b = b, a
	}
	f := &t.flat
	ea, eb := f.en[a], f.en[b]
	if ea == eb {
		lat := f.lan[a] + f.lan[b]
		if f.vlan[a] != f.vlan[b] {
			lat += t.cfg.VLANCrossMs
		}
		return lat
	}
	pa, pb := f.pop[a], f.pop[b]
	if pa != pb {
		// The common case at scale: cross-PoP, four flat loads plus the
		// precomputed hub table.
		return f.toCore[a] + t.hubLat.oneWay(pa, pb) + f.hub[b] + f.lan[b]
	}
	ena, enb := &t.ENs[ea], &t.ENs[eb]
	d := commonChainDepth(ena, enb)
	if d > 0 {
		// Deepest common router: climb only as far as it.
		c := ena.ChainLatMs[d-1]
		return f.lan[a] + (f.hub[a] - c) + (f.hub[b] - c) + f.lan[b]
	}
	return f.toCore[a] + f.hub[b] + f.lan[b]
}

// OneWayMs returns the true one-way latency in milliseconds between two
// hosts, including alternate paths where they exist.
func (t *Topology) OneWayMs(a, b HostID) float64 {
	tree := t.TreeOneWayMs(a, b)
	return tree * t.shortcuts.factor(a, b, tree)
}

// RTTms returns the true round-trip time between two hosts in milliseconds.
func (t *Topology) RTTms(a, b HostID) float64 { return 2 * t.OneWayMs(a, b) }

// RTT returns the true round-trip time between two hosts.
func (t *Topology) RTT(a, b HostID) time.Duration { return Duration(t.RTTms(a, b)) }

// TreeRTTms returns the round-trip time along the routing tree (what ping
// between the pair would see if no alternate path existed; also the RTT a
// measurement host observes toward either of them, since measurement paths
// are tree paths).
func (t *Topology) TreeRTTms(a, b HostID) float64 { return 2 * t.TreeOneWayMs(a, b) }

// hostToRouterOneWayMs returns the one-way tree latency from a host to an
// arbitrary router.
func (t *Topology) hostToRouterOneWayMs(h HostID, r RouterID) float64 {
	hh := &t.Hosts[h]
	en := &t.ENs[hh.EN]
	rt := &t.Routers[r]
	// Router on the host's own access chain?
	for i, cr := range en.Chain {
		if cr == r {
			return hh.LANLatMs + (en.HubLatMs - en.ChainLatMs[i])
		}
	}
	toCore := hh.LANLatMs + en.HubLatMs
	if rt.PoP == en.PoP {
		return toCore + rt.CoreLatMs
	}
	return toCore + t.hubLat.oneWay(en.PoP, rt.PoP) + rt.CoreLatMs
}

// RouterRTTms returns the round-trip time from a host to a router along the
// tree path, in milliseconds (what ping to the router reports, pre-noise).
func (t *Topology) RouterRTTms(h HostID, r RouterID) float64 {
	return 2 * t.hostToRouterOneWayMs(h, r)
}

// Path returns the forward router-level path from host `from` to host `to`,
// as a traceroute run at `from` would reveal it: each hop carries the
// cumulative tree RTT from the source. The destination host itself is not
// included. Multihomed destinations present a different final access chain
// depending on the observing source (deterministically), which is how the
// Section 3.2 pipeline loses peers whose upstream router is not unique
// across vantage points.
func (t *Topology) Path(from, to HostID) []Hop {
	hf, ht := &t.Hosts[from], &t.Hosts[to]
	ef := &t.ENs[hf.EN]
	et := &t.ENs[ht.EN]

	var hops []Hop
	add := func(r RouterID, oneWayMs float64) {
		hops = append(hops, Hop{Router: r, RTTms: 2 * oneWayMs, Valid: !t.Routers[r].Anonymous})
	}

	if hf.EN == ht.EN {
		// Within an end-network the LAN is switch-level: no IP routers.
		return nil
	}

	if ef.PoP == et.PoP {
		d := commonChainDepth(ef, et)
		if d > 0 {
			// Up the source-specific part of the chain to the deepest
			// common router, then down the destination-specific part.
			base := ef.ChainLatMs[d-1]
			for i := len(ef.Chain) - 1; i >= d; i-- {
				add(ef.Chain[i], hf.LANLatMs+(ef.HubLatMs-ef.ChainLatMs[i]))
			}
			common := hf.LANLatMs + (ef.HubLatMs - base)
			add(ef.Chain[d-1], common)
			t.appendDownstream(&hops, common, et, d, to)
			return hops
		}
		// Via the PoP core.
		for i := len(ef.Chain) - 1; i >= 0; i-- {
			add(ef.Chain[i], hf.LANLatMs+(ef.HubLatMs-ef.ChainLatMs[i]))
		}
		atCore := hf.LANLatMs + ef.HubLatMs
		add(t.PoPs[ef.PoP].Core[0], atCore)
		t.appendDownstream(&hops, atCore, et, 0, to)
		return hops
	}

	// Different PoPs: up to the source core, across the backbone, down.
	for i := len(ef.Chain) - 1; i >= 0; i-- {
		add(ef.Chain[i], hf.LANLatMs+(ef.HubLatMs-ef.ChainLatMs[i]))
	}
	atCore := hf.LANLatMs + ef.HubLatMs
	pf, pt := &t.PoPs[ef.PoP], &t.PoPs[et.PoP]
	add(pf.Core[0], atCore)
	hub := t.hubLat.oneWay(ef.PoP, et.PoP)
	if len(pf.Backbone) > 0 {
		add(pf.Backbone[0], atCore+0.25*hub)
	}
	if len(pt.Backbone) > 0 {
		add(pt.Backbone[0], atCore+0.75*hub)
	}
	atDstCore := atCore + hub
	add(pt.Core[0], atDstCore)
	t.appendDownstream(&hops, atDstCore, et, 0, to)
	return hops
}

// appendDownstream appends the destination-side chain hops from index d
// (exclusive of the already-added common/core hop) down to the edge.
// baseOneWay is the cumulative one-way latency at the branch point. When the
// destination is multihomed, the final hop may be replaced by its alternate
// upstream, depending deterministically on the (source EN, destination)
// pair — different vantage points therefore see different upstream routers.
func (t *Topology) appendDownstream(hops *[]Hop, baseOneWay float64, et *EndNetwork, d int, to HostID) {
	ht := &t.Hosts[to]
	var branch float64
	if d > 0 {
		branch = et.ChainLatMs[d-1]
	}
	for i := d; i < len(et.Chain); i++ {
		r := et.Chain[i]
		oneWay := baseOneWay + (et.ChainLatMs[i] - branch)
		last := i == len(et.Chain)-1
		if last && ht.Multihomed && ht.AltUpstream != NoRouter {
			// Half of all observation points route in via the second
			// upstream link.
			if pairHash(t.shortcuts.seed^0x5CA1AB1E, int64(t.Hosts[to].EN), int64(to)^int64((*hops)[0].Router)<<1)&1 == 0 {
				r = ht.AltUpstream
			}
		}
		*hops = append(*hops, Hop{Router: r, RTTms: 2 * oneWay, Valid: !t.Routers[r].Anonymous})
	}
}

// LastValidRouter returns the closest upstream router of `to` as observed
// from `from`: the last hop of the traceroute that answered. Returns
// NoRouter when no hop answered.
func (t *Topology) LastValidRouter(from, to HostID) RouterID {
	hops := t.Path(from, to)
	for i := len(hops) - 1; i >= 0; i-- {
		if hops[i].Valid {
			return hops[i].Router
		}
	}
	return NoRouter
}

// buildHubLatencies computes PoP-pair one-way latencies from city geometry,
// intra-city and inter-AS penalties, and deterministic per-pair noise.
func buildHubLatencies(t *Topology, seed int64) *hubLatencies {
	n := len(t.PoPs)
	h := &hubLatencies{n: n, lat: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pi, pj := &t.PoPs[i], &t.PoPs[j]
			ci, cj := &t.Cities[pi.City], &t.Cities[pj.City]
			dx, dy := ci.X-cj.X, ci.Y-cj.Y
			oneWay := math.Hypot(dx, dy) * t.cfg.MsPerUnit
			if pi.City == pj.City {
				// Same metro: short dark-fibre distance.
				oneWay = 0.3
			}
			if pi.AS != pj.AS {
				// Peering detour, fixed per AS pair.
				u := float64(pairHash(seed^0x0BADF00D, int64(pi.AS), int64(pj.AS))&0xFFFF) / 65536.0
				oneWay += t.cfg.InterASPenaltyMinMs + u*(t.cfg.InterASPenaltyMaxMs-t.cfg.InterASPenaltyMinMs)
			}
			// +-12% path irregularity, fixed per PoP pair.
			u := float64(pairHash(seed^0x00C0FFEE, int64(i), int64(j))&0xFFFF)/65536.0*0.24 - 0.12
			oneWay *= 1 + u
			h.lat[i*n+j] = oneWay
			h.lat[j*n+i] = oneWay
		}
	}
	return h
}
