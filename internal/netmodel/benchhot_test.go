package netmodel_test

import (
	"sync"
	"testing"

	"nearestpeer/internal/benchhot"
	"nearestpeer/internal/netmodel"
)

// These delegate to internal/benchhot so `go test -bench` and
// cmd/benchscale (which writes CI's BENCH_scale.json) measure the exact
// same workloads. The topology is built once per process, outside the
// timers — and lazily, so plain `go test` runs that select no benchmark
// never pay for the generation.

var benchTop = sync.OnceValue(func() *netmodel.Topology {
	return netmodel.Generate(netmodel.DefaultConfig(), 1)
})

func BenchmarkTreeOneWayMs(b *testing.B) { benchhot.TreeOneWayMs(b, benchTop()) }
func BenchmarkRTTCacheHit(b *testing.B)  { benchhot.RTTCacheHit(b, benchTop()) }
