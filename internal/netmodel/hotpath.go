package netmodel

// This file is the latency-pricing hot path. The message-level experiments
// price every wire message through Topology.RTTms, so at scale-study
// populations (48.5M kernel events at 100k hosts) the pointer-chasing
// cost of walking Host and EndNetwork structs per call dominates whole
// cells. Two structures flatten it:
//
//   - hostFlat: a per-host structure-of-arrays table (LAN latency, EN hub
//     latency, their precomputed sum, and the EN/PoP/VLAN identifiers)
//     built once at Generate time. TreeOneWayMs then prices the common
//     cross-PoP case from four flat array loads plus the existing hubLat
//     lookup, touching neither the Host nor the EndNetwork structs.
//   - RTTCache: a small direct-mapped cache over unordered host pairs.
//     Protocol maintenance (chord stabilize, ring pings) re-prices the
//     same few pairs millions of times; a cache hit skips both the tree
//     walk and the shortcut-model hash.
//
// Determinism note: every fast path reproduces the exact floating-point
// operation order of the original struct walk (same operands, same
// left-to-right summation), and the cache stores values the slow path
// computed — so figures priced through either path are byte-identical.

// hostFlat holds per-host latency inputs as parallel arrays indexed by
// HostID. All values are copies of Host/EndNetwork fields, never mutated
// after Generate, so reads are safe from any number of goroutines.
type hostFlat struct {
	// lan[h] is Host.LANLatMs.
	lan []float64
	// hub[h] is the host's EndNetwork.HubLatMs.
	hub []float64
	// toCore[h] is lan[h] + hub[h], precomputed in exactly that order —
	// the prefix every via-the-core price starts with.
	toCore []float64
	// en, pop and vlan are the host's end-network, PoP and VLAN index.
	en   []ENID
	pop  []PoPID
	vlan []int32
}

// buildHostFlat populates the SoA table from the generated hosts. Called
// once at the end of Generate, after every host exists.
func buildHostFlat(t *Topology) {
	n := len(t.Hosts)
	t.flat = hostFlat{
		lan:    make([]float64, n),
		hub:    make([]float64, n),
		toCore: make([]float64, n),
		en:     make([]ENID, n),
		pop:    make([]PoPID, n),
		vlan:   make([]int32, n),
	}
	for i := range t.Hosts {
		h := &t.Hosts[i]
		en := &t.ENs[h.EN]
		t.flat.lan[i] = h.LANLatMs
		t.flat.hub[i] = en.HubLatMs
		t.flat.toCore[i] = h.LANLatMs + en.HubLatMs
		t.flat.en[i] = h.EN
		t.flat.pop[i] = en.PoP
		t.flat.vlan[i] = int32(h.VLAN)
	}
}

// RTTCache is a direct-mapped cache of Topology.RTTms over unordered host
// pairs. A colliding pair simply overwrites the slot — the cache trades
// capacity misses for a fixed footprint and zero probe loops. Cached
// values are exactly what RTTms computed, so reading through the cache
// can never change a figure byte.
//
// The cache is deliberately NOT safe for concurrent use: parallel engine
// trials each wrap the shared read-only Topology in their own cache (see
// latency.FullTopologyMatrix.EnableRTTCache), the same way each trial
// owns its own kernel.
type RTTCache struct {
	// Hits and Misses count lookups for observability; they carry no
	// semantic weight.
	Hits, Misses uint64

	top  *Topology
	keys []uint64 // packed pair key + 1; 0 marks an empty slot
	vals []float64
	mask uint64
}

// DefaultRTTCacheSlots is the slot count NewRTTCache uses for slots <= 0:
// 32k slots (512 KiB) covers a chord ring's successor/finger working set
// with room to spare.
const DefaultRTTCacheSlots = 1 << 15

// NewRTTCache builds a cache over the topology with the given slot count,
// rounded up to a power of two. slots <= 0 selects DefaultRTTCacheSlots.
func NewRTTCache(t *Topology, slots int) *RTTCache {
	if slots <= 0 {
		slots = DefaultRTTCacheSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &RTTCache{
		top:  t,
		keys: make([]uint64, n),
		vals: make([]float64, n),
		mask: uint64(n - 1),
	}
}

// RTTms returns Topology.RTTms(a, b), serving repeats of the same
// unordered pair from the cache.
func (c *RTTCache) RTTms(a, b HostID) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	key++ // keep 0 free as the empty-slot marker
	// Fibonacci hashing spreads the dense low bits of (a, b) across slots.
	slot := (key * 0x9E3779B97F4A7C15 >> 13) & c.mask
	if c.keys[slot] == key {
		c.Hits++
		return c.vals[slot]
	}
	c.Misses++
	v := c.top.RTTms(a, b)
	c.keys[slot] = key
	c.vals[slot] = v
	return v
}

// Topology returns the topology the cache prices.
func (c *RTTCache) Topology() *Topology { return c.top }
