// Package netmodel implements the generative Internet model this
// reproduction measures and simulates against.
//
// The paper's entire argument rests on the structure of the Internet "last
// hop" (its Section 2): an ISP PoP is a star hub; end-networks (campus
// networks, extended LANs) hang off it through short chains of aggregation
// routers; latencies inside an end-network are measured in microseconds
// while latencies across end-networks of the same PoP are milliseconds and
// roughly equal. netmodel makes every one of those structural facts an
// explicit, generated object: ASes, cities, PoPs with core-router sets
// (cluster-hubs), access chains, end-networks with VLAN structure, home
// (broadband) hosts, DNS domains, and an IPv4 address plan.
//
// The model is deliberately a *routing* model, not a packet model: the unit
// of truth is the one-way latency along the routed path between two
// attachment points. The measurement tools in internal/measure observe this
// world through the same apertures the paper had — ping, traceroute
// (rockettrace), TCP-connect timing and King — including their error
// sources.
package netmodel

import (
	"fmt"
	"time"
)

// Identifier types. Everything is a dense small integer so experiments over
// hundreds of thousands of hosts stay cheap and allocation-free.
type (
	// HostID identifies a host (end-host, peer, DNS server, vantage point).
	HostID int32
	// RouterID identifies a router.
	RouterID int32
	// ENID identifies an end-network.
	ENID int32
	// PoPID identifies an ISP point of presence.
	PoPID int32
	// ASID identifies an autonomous system (ISP).
	ASID int32
	// CityID identifies a city.
	CityID int32
)

// NoRouter is the sentinel for "no such router".
const NoRouter RouterID = -1

// RouterKind classifies a router's role in the topology.
type RouterKind uint8

const (
	// KindCore is a PoP core router — part of a cluster-hub.
	KindCore RouterKind = iota
	// KindAgg is an access aggregation router between end-networks and a
	// PoP core (the funnel-in structure of the paper's Figure 1).
	KindAgg
	// KindBackbone is a long-haul router between PoPs.
	KindBackbone
)

func (k RouterKind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindAgg:
		return "agg"
	case KindBackbone:
		return "backbone"
	default:
		return fmt.Sprintf("RouterKind(%d)", uint8(k))
	}
}

// City is a geographic location. Coordinates are in a synthetic plane whose
// unit distances convert to backbone propagation latency.
type City struct {
	ID   CityID
	Name string
	Code string // three-letter code embedded in router DNS names
	X, Y float64
}

// AS is an autonomous system (an ISP or a large hosting provider).
type AS struct {
	ID     ASID
	Number int    // AS number, e.g. 7018
	Name   string // short name embedded in router DNS names
	Blocks []IPBlock
}

// Router is a router. Name carries the rockettrace-visible DNS name, which
// encodes an (AS, city) annotation; with small probability the name is
// misconfigured and encodes the wrong city, an error source the paper calls
// out in Section 3.1.
type Router struct {
	ID        RouterID
	AS        ASID
	City      CityID
	PoP       PoPID
	Kind      RouterKind
	Name      string
	NameCity  CityID // city the DNS name claims (== City unless misconfigured)
	Anonymous bool   // does not answer traceroute (hop shows '*')
	// Customer marks routers owned by the customer organisation rather
	// than the ISP (campus border and internal routers). Their DNS names
	// carry no usable (AS, city) annotation, so rockettrace cannot place
	// them in a PoP — which is precisely how the paper tells "a closer
	// common router than the PoP" apart from the PoP itself.
	Customer bool
	// CoreLatMs is the one-way latency in milliseconds from this router to
	// its PoP's core. Zero for core routers; small for intra-PoP routers;
	// for backbone routers it is the latency to the owning PoP.
	CoreLatMs float64
}

// PoP is an ISP point of presence: the star hub of the paper's Figure 1.
// Its core routers form the cluster-hub — a set of close-by routers with
// negligible latency between one another.
type PoP struct {
	ID       PoPID
	AS       ASID
	City     CityID
	Core     []RouterID
	Backbone []RouterID // this PoP's long-haul routers
	ENs      []ENID
}

// EndNetwork is the paper's "end-network": a LAN, extended LAN, or campus /
// corporate network in one location — or a degenerate single-host "network"
// for a home broadband user (IsHome).
type EndNetwork struct {
	ID     ENID
	PoP    PoPID
	Prefix IPBlock
	Domain string // DNS domain of the organisation; "" for home users
	IsHome bool
	// Chain is the access path from the PoP core down to this end-network:
	// Chain[0] attaches to the core, Chain[len-1] is the end-network's edge
	// router (the closest upstream router its hosts see). Aggregation
	// routers may be shared with other end-networks — that is the
	// "funnelling in" of Figure 1; the deepest shared router is then a
	// closer common router than the PoP.
	Chain []RouterID
	// ChainLatMs[i] is the cumulative one-way latency in milliseconds from
	// the PoP core to Chain[i]. len(ChainLatMs) == len(Chain).
	ChainLatMs []float64
	// HubLatMs is the one-way latency from the end-network edge to the PoP
	// core (== last element of ChainLatMs, or the direct link latency when
	// Chain is empty).
	HubLatMs float64
	// VLANs is the number of VLAN segments the network is split into.
	// Multicast does not cross VLAN boundaries (the failure mode of the
	// paper's first mitigation).
	VLANs int
	Hosts []HostID
}

// EdgeRouter returns the closest upstream router of hosts in this network.
func (en *EndNetwork) EdgeRouter() RouterID {
	if len(en.Chain) == 0 {
		return NoRouter
	}
	return en.Chain[len(en.Chain)-1]
}

// DNSServer carries the DNS role of a host.
type DNSServer struct {
	Recursive bool
	// Domains this server is authoritative for. King requires that the
	// second server of a pair be authoritative for a name the first is not.
	Domains []string
}

// Host is an end-host.
type Host struct {
	ID HostID
	EN ENID
	IP IPv4
	// VLAN is the host's VLAN index within its end-network.
	VLAN int
	// LANLatMs is the one-way latency from the host to its end-network edge
	// (tens of microseconds on a LAN; the full DSL/cable access latency for
	// home hosts, which is what dominates the hub-to-peer latencies of the
	// paper's Figure 7).
	LANLatMs float64
	// RespondsPing / RespondsTCP model the measurement attrition of Section
	// 3.2: only 5,904 of 156,658 Azureus addresses answered.
	RespondsPing bool
	RespondsTCP  bool
	// Multihomed hosts have a second upstream and show different upstream
	// routers from different vantage points, so the pipeline drops them.
	Multihomed bool
	// AltUpstream is the edge router seen via the second upstream when
	// Multihomed (NoRouter otherwise).
	AltUpstream RouterID
	// DNS is non-nil when the host is a DNS server.
	DNS *DNSServer
}

// Topology is the generated Internet. All slices are indexed by the
// corresponding ID type.
type Topology struct {
	Cities  []City
	ASes    []AS
	Routers []Router
	PoPs    []PoP
	ENs     []EndNetwork
	Hosts   []Host

	// byIP maps host IP -> host ID.
	byIP map[IPv4]HostID
	// hubRTT caches PoP-pair one-way latencies.
	hubLat *hubLatencies
	// shortcuts models alternate paths (see routing.go).
	shortcuts shortcutModel
	// flat is the per-host structure-of-arrays latency table the pricing
	// hot path reads instead of chasing Host/EndNetwork pointers (see
	// hotpath.go).
	flat hostFlat
	// floors holds the Generate-time latency lower bounds the sharded
	// kernel derives its lookahead window from (see floor.go).
	floors latencyFloors
	cfg    Config
}

// Config returns the generation parameters the topology was built with.
func (t *Topology) Config() Config { return t.cfg }

// Host returns the host with the given ID.
func (t *Topology) Host(id HostID) *Host { return &t.Hosts[id] }

// Router returns the router with the given ID.
func (t *Topology) Router(id RouterID) *Router { return &t.Routers[id] }

// EN returns the end-network with the given ID.
func (t *Topology) EN(id ENID) *EndNetwork { return &t.ENs[id] }

// PoP returns the PoP with the given ID.
func (t *Topology) PoP(id PoPID) *PoP { return &t.PoPs[id] }

// City returns the city with the given ID.
func (t *Topology) City(id CityID) *City { return &t.Cities[id] }

// ASOf returns the AS with the given ID.
func (t *Topology) ASOf(id ASID) *AS { return &t.ASes[id] }

// HostByIP looks a host up by address.
func (t *Topology) HostByIP(ip IPv4) (HostID, bool) {
	id, ok := t.byIP[ip]
	return id, ok
}

// HostEN returns the end-network of a host.
func (t *Topology) HostEN(id HostID) *EndNetwork { return &t.ENs[t.Hosts[id].EN] }

// HostPoP returns the PoP a host attaches through.
func (t *Topology) HostPoP(id HostID) *PoP { return &t.PoPs[t.HostEN(id).PoP] }

// SameEN reports whether two hosts share an end-network. This is the ground
// truth the paper itself could only observe in simulation: "exact closest
// peer" means a peer in the target's end-network.
func (t *Topology) SameEN(a, b HostID) bool { return t.Hosts[a].EN == t.Hosts[b].EN }

// SamePoPCluster reports whether two hosts attach through the same PoP —
// whether they are in the same cluster in the paper's sense.
func (t *Topology) SamePoPCluster(a, b HostID) bool {
	return t.HostEN(a).PoP == t.HostEN(b).PoP
}

// NumHosts returns the number of hosts.
func (t *Topology) NumHosts() int { return len(t.Hosts) }

// Duration converts a latency in float64 milliseconds to a time.Duration.
func Duration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// Ms converts a time.Duration to float64 milliseconds.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
