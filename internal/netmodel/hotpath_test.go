package netmodel

import (
	"testing"

	"nearestpeer/internal/rng"
)

// treeOneWayMsReference is the original struct-walking implementation of
// TreeOneWayMs, kept verbatim as the oracle: the flat-table hot path must
// reproduce it bit for bit, not merely within a tolerance — the figure
// goldens depend on every float operation happening in the same order.
func treeOneWayMsReference(t *Topology, a, b HostID) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	ha, hb := &t.Hosts[a], &t.Hosts[b]
	if ha.EN == hb.EN {
		lat := ha.LANLatMs + hb.LANLatMs
		if ha.VLAN != hb.VLAN {
			lat += t.cfg.VLANCrossMs
		}
		return lat
	}
	ea, eb := &t.ENs[ha.EN], &t.ENs[hb.EN]
	if ea.PoP == eb.PoP {
		d := commonChainDepth(ea, eb)
		if d > 0 {
			c := ea.ChainLatMs[d-1]
			return ha.LANLatMs + (ea.HubLatMs - c) + (eb.HubLatMs - c) + hb.LANLatMs
		}
		return ha.LANLatMs + ea.HubLatMs + eb.HubLatMs + hb.LANLatMs
	}
	hub := t.hubLat.oneWay(ea.PoP, eb.PoP)
	return ha.LANLatMs + ea.HubLatMs + hub + eb.HubLatMs + hb.LANLatMs
}

// TestTreeOneWayMsMatchesReferenceExactly sweeps random pairs (plus every
// structural case: same EN, same PoP, cross PoP) and requires bit-exact
// agreement between the flat hot path and the struct walk.
func TestTreeOneWayMsMatchesReferenceExactly(t *testing.T) {
	top := Generate(DefaultConfig(), 42)
	n := len(top.Hosts)
	src := rng.New(7)
	for i := 0; i < 20000; i++ {
		a, b := HostID(src.Intn(n)), HostID(src.Intn(n))
		got, want := top.TreeOneWayMs(a, b), treeOneWayMsReference(top, a, b)
		if got != want {
			t.Fatalf("TreeOneWayMs(%d, %d) = %v, reference %v (Δ %g)", a, b, got, want, got-want)
		}
	}
	// Every host paired with a same-EN neighbour, to force the intra-EN
	// branch for ENs of every VLAN shape.
	for _, en := range top.ENs {
		if len(en.Hosts) < 2 {
			continue
		}
		a, b := en.Hosts[0], en.Hosts[len(en.Hosts)-1]
		if got, want := top.TreeOneWayMs(a, b), treeOneWayMsReference(top, a, b); got != want {
			t.Fatalf("same-EN TreeOneWayMs(%d, %d) = %v, reference %v", a, b, got, want)
		}
	}
}

// TestHostFlatTableMirrorsStructs pins the SoA table against the structs
// it flattens.
func TestHostFlatTableMirrorsStructs(t *testing.T) {
	top := Generate(DefaultConfig(), 3)
	f := &top.flat
	if len(f.lan) != len(top.Hosts) {
		t.Fatalf("flat table covers %d hosts, topology has %d", len(f.lan), len(top.Hosts))
	}
	for i := range top.Hosts {
		h := &top.Hosts[i]
		en := &top.ENs[h.EN]
		if f.lan[i] != h.LANLatMs || f.hub[i] != en.HubLatMs ||
			f.toCore[i] != h.LANLatMs+en.HubLatMs ||
			f.en[i] != h.EN || f.pop[i] != en.PoP || f.vlan[i] != int32(h.VLAN) {
			t.Fatalf("flat table row %d diverged from structs", i)
		}
	}
}

// TestTreeOneWayMsZeroAlloc is a failing test, not a bench note: the
// pricing hot path must not allocate, or 48.5M kernel events worth of
// pricing turns into GC pressure.
func TestTreeOneWayMsZeroAlloc(t *testing.T) {
	top := Generate(DefaultConfig(), 1)
	n := len(top.Hosts)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		_ = top.TreeOneWayMs(HostID(i%n), HostID((i*7+3)%n))
		i++
	}); avg != 0 {
		t.Fatalf("TreeOneWayMs allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		_ = top.RTTms(HostID(i%n), HostID((i*13+5)%n))
		i++
	}); avg != 0 {
		t.Fatalf("RTTms allocates %v per call, want 0", avg)
	}
}

// TestRTTCacheMatchesDirect requires cached reads to be bit-identical to
// direct pricing, on both the miss (fill) and hit (serve) path.
func TestRTTCacheMatchesDirect(t *testing.T) {
	top := Generate(DefaultConfig(), 5)
	n := len(top.Hosts)
	c := NewRTTCache(top, 1<<10)
	src := rng.New(9)
	pairs := make([][2]HostID, 500)
	for i := range pairs {
		pairs[i] = [2]HostID{HostID(src.Intn(n)), HostID(src.Intn(n))}
	}
	for round := 0; round < 3; round++ { // round 0 fills, later rounds hit
		for _, p := range pairs {
			if got, want := c.RTTms(p[0], p[1]), top.RTTms(p[0], p[1]); got != want {
				t.Fatalf("round %d: cache RTTms(%d, %d) = %v, direct %v", round, p[0], p[1], got, want)
			}
		}
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Fatalf("cache accounting implausible: %d hits, %d misses", c.Hits, c.Misses)
	}
	// Symmetry through the canonical pair key.
	a, b := pairs[0][0], pairs[0][1]
	if c.RTTms(a, b) != c.RTTms(b, a) {
		t.Fatal("cache broke RTT symmetry")
	}
	if c.RTTms(a, a) != 0 {
		t.Fatal("self RTT through cache not zero")
	}
}

// TestRTTCacheZeroAllocOnHit: the steady state of chord stabilize is a
// cache hit; it must be allocation-free.
func TestRTTCacheZeroAllocOnHit(t *testing.T) {
	top := Generate(DefaultConfig(), 1)
	c := NewRTTCache(top, 1<<10)
	c.RTTms(0, 1)
	if avg := testing.AllocsPerRun(1000, func() { _ = c.RTTms(0, 1) }); avg != 0 {
		t.Fatalf("cache hit allocates %v per call, want 0", avg)
	}
}

func TestRTTCacheSlotRounding(t *testing.T) {
	top := Generate(DefaultConfig(), 1)
	if c := NewRTTCache(top, 100); len(c.keys) != 128 {
		t.Fatalf("100 slots rounded to %d, want 128", len(c.keys))
	}
	if c := NewRTTCache(top, 0); len(c.keys) != DefaultRTTCacheSlots {
		t.Fatalf("default slots = %d, want %d", len(c.keys), DefaultRTTCacheSlots)
	}
}
