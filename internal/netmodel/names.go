package netmodel

import "fmt"

// cityNames is a pool of (name, code) pairs used to label generated cities.
// Codes appear inside router DNS names, which is how rockettrace infers a
// router's PoP (Section 3.1).
var cityNames = [][2]string{
	{"New York", "nyc"}, {"Los Angeles", "lax"}, {"Chicago", "chi"},
	{"Houston", "hou"}, {"Phoenix", "phx"}, {"Seattle", "sea"},
	{"Denver", "den"}, {"Boston", "bos"}, {"Atlanta", "atl"},
	{"Miami", "mia"}, {"Dallas", "dfw"}, {"San Jose", "sjc"},
	{"Washington", "iad"}, {"Minneapolis", "msp"}, {"Detroit", "dtw"},
	{"Portland", "pdx"}, {"Salt Lake City", "slc"}, {"Kansas City", "mci"},
	{"St Louis", "stl"}, {"Pittsburgh", "pit"}, {"Cleveland", "cle"},
	{"Philadelphia", "phl"}, {"San Diego", "san"}, {"Sacramento", "smf"},
	{"Austin", "aus"}, {"Nashville", "bna"}, {"Charlotte", "clt"},
	{"Raleigh", "rdu"}, {"Columbus", "cmh"}, {"Indianapolis", "ind"},
	{"Milwaukee", "mke"}, {"Cincinnati", "cvg"}, {"Orlando", "mco"},
	{"Tampa", "tpa"}, {"Baltimore", "bwi"}, {"Buffalo", "buf"},
	{"Rochester", "roc"}, {"Albany", "alb"}, {"Syracuse", "syr"},
	{"Ithaca", "ith"}, {"Hartford", "bdl"}, {"Providence", "pvd"},
	{"Richmond", "ric"}, {"Norfolk", "orf"}, {"Memphis", "mem"},
	{"New Orleans", "msy"}, {"Oklahoma City", "okc"}, {"Tucson", "tus"},
	{"Albuquerque", "abq"}, {"Boise", "boi"}, {"Spokane", "geg"},
	{"Fresno", "fat"}, {"Omaha", "oma"}, {"Des Moines", "dsm"},
	{"Madison", "msn"}, {"Louisville", "sdf"}, {"Birmingham", "bhm"},
	{"Jacksonville", "jax"}, {"El Paso", "elp"}, {"Honolulu", "hnl"},
}

// ispNames is a pool of short ISP names used in router DNS names.
var ispNames = []string{
	"transgrid", "netspan", "corelink", "fibernet", "pathway",
	"skynetic", "interlace", "quicklink", "broadpath", "metrowave",
	"lightcore", "spannet", "globalrim", "nexhop", "packetsea",
	"routeline", "carrier9", "uplinkco", "edgestream", "backhaul1",
}

// interfacePrefixes imitate common router interface naming.
var interfacePrefixes = []string{"ge", "xe", "so", "te", "et", "gi"}

// routerName builds the DNS name of a router. nameCity is the city the name
// *claims*, which differs from the true city for misconfigured routers.
func routerName(kind RouterKind, idx int, cityCode, asName string) string {
	prefix := interfacePrefixes[idx%len(interfacePrefixes)]
	switch kind {
	case KindCore:
		return fmt.Sprintf("%s-%d-%d.core%d.%s.%s.net", prefix, idx%8, (idx/8)%4, idx%4, cityCode, asName)
	case KindBackbone:
		return fmt.Sprintf("%s-%d-%d.bb%d.%s.%s.net", prefix, idx%8, (idx/8)%4, idx%2, cityCode, asName)
	default:
		return fmt.Sprintf("%s-%d-%d.agg%d.%s.%s.net", prefix, idx%8, (idx/8)%4, idx%16, cityCode, asName)
	}
}

// domainName synthesises an organisation's DNS domain.
func domainName(i int) string {
	return fmt.Sprintf("org%05d.example.com", i)
}
