package netmodel

import (
	"fmt"
	"math"

	"nearestpeer/internal/rng"
)

// Config holds every structural parameter of the generated Internet. The
// defaults in DefaultConfig produce a small topology suitable for unit tests
// and examples; MeasurementConfig scales to the population sizes of the
// paper's Section 3 study.
type Config struct {
	// Geography.
	NCities int
	NASes   int
	// ASCityCoverage is the fraction of cities in which a given AS deploys
	// a PoP.
	ASCityCoverage float64
	PlaneWidth     float64 // synthetic plane, units convert via MsPerUnit
	PlaneHeight    float64
	MsPerUnit      float64 // one-way ms of backbone latency per unit distance
	// Inter-AS peering penalty (one-way ms), fixed per AS pair.
	InterASPenaltyMinMs float64
	InterASPenaltyMaxMs float64

	// End-networks (campus / corporate networks) per PoP.
	MinENsPerPoP  int
	MaxENsPerPoP  int
	MinHostsPerEN int
	MaxHostsPerEN int
	MaxVLANs      int
	// DirectAttachProb is the probability an end-network attaches straight
	// to the PoP core rather than through a shared aggregation router.
	DirectAttachProb float64
	// Dedicated access routers per end-network (campus border etc.).
	MinDedicatedRouters int
	MaxDedicatedRouters int

	// Home (broadband) hosts.
	MeanHomesPerPoP float64
	HomesPareto     float64 // Pareto shape for per-PoP home counts
	HomesCapMult    float64 // cap per-PoP homes at HomesCapMult×mean
	BRASCapacity    int     // homes per BRAS aggregation router
	DSLMedianMs     float64 // median one-way access latency of a home host
	DSLSigma        float64 // log-normal sigma
	DSLMinMs        float64
	DSLMaxMs        float64

	// Cluster-hub latencies: per-PoP mean one-way latency between its
	// end-networks' edges and the core, and the per-EN spread around it.
	// Tight spreads are exactly the paper's clustering condition.
	ClusterHubLatMinMs float64
	ClusterHubLatMaxMs float64
	HubLatSpread       float64
	// Corporate host LAN latencies (one-way ms).
	LANLatMinMs float64
	LANLatMaxMs float64
	VLANCrossMs float64

	// Measurement-visibility model.
	AnonymousRouterProb   float64
	MisconfiguredNameProb float64
	MultihomedProbHome    float64
	MultihomedProbCorp    float64
	PingRespProbHome      float64
	PingRespProbCorp      float64
	TCPRespProbHome       float64
	TCPRespProbCorp       float64
	// DNS deployment.
	DNSServerENProb float64 // fraction of corporate ENs hosting DNS servers
	DNSGeoSplitProb float64 // P(second server of a domain lives elsewhere)

	// Address plan.
	ScatterCorp float64 // P(an EN /24 is allocated out of sequence)
	ScatterHome float64 // P(a home address is allocated out of sequence)

	// Alternate-path model.
	ShortcutOnsetMs  float64
	ShortcutFullMs   float64
	ShortcutMaxProb  float64
	ShortcutBaseProb float64 // distance-independent local shortcuts
	ShortcutMinFact  float64
	ShortcutMaxFact  float64
}

// DefaultConfig returns a small topology configuration: a few thousand
// hosts, fast enough for unit tests and examples.
func DefaultConfig() Config {
	return Config{
		NCities: 12, NASes: 5, ASCityCoverage: 0.45,
		PlaneWidth: 4200, PlaneHeight: 2600, MsPerUnit: 0.0075,
		InterASPenaltyMinMs: 1, InterASPenaltyMaxMs: 6,

		MinENsPerPoP: 4, MaxENsPerPoP: 14,
		MinHostsPerEN: 2, MaxHostsPerEN: 12,
		MaxVLANs: 4, DirectAttachProb: 0.3,
		MinDedicatedRouters: 1, MaxDedicatedRouters: 3,

		MeanHomesPerPoP: 60, HomesPareto: 1.3, HomesCapMult: 12, BRASCapacity: 64,
		DSLMedianMs: 9, DSLSigma: 0.55, DSLMinMs: 2, DSLMaxMs: 45,

		ClusterHubLatMinMs: 1.5, ClusterHubLatMaxMs: 10,
		HubLatSpread: 0.25,
		LANLatMinMs:  0.02, LANLatMaxMs: 0.1, VLANCrossMs: 0.15,

		AnonymousRouterProb: 0.08, MisconfiguredNameProb: 0.08,
		MultihomedProbHome: 0.02, MultihomedProbCorp: 0.12,
		PingRespProbHome: 0.3, PingRespProbCorp: 0.55,
		TCPRespProbHome: 0.25, TCPRespProbCorp: 0.4,
		DNSServerENProb: 0.5, DNSGeoSplitProb: 0.03,

		ScatterCorp: 0.35, ScatterHome: 0.12,

		ShortcutOnsetMs: 6, ShortcutFullMs: 55,
		ShortcutMaxProb: 0.5, ShortcutBaseProb: 0.12,
		ShortcutMinFact: 0.25, ShortcutMaxFact: 0.9,
	}
}

// MeasurementConfig returns the large-scale configuration used to reproduce
// the Section 3 measurement study: hundreds of PoPs, hundreds of thousands
// of hosts, tens of thousands of DNS servers.
func MeasurementConfig() Config {
	c := DefaultConfig()
	c.NCities = 40
	c.NASes = 14
	c.ASCityCoverage = 0.5
	c.MinENsPerPoP, c.MaxENsPerPoP = 10, 80
	c.MinHostsPerEN, c.MaxHostsPerEN = 2, 24
	// Real campus access paths run deeper than the toy default.
	c.MinDedicatedRouters, c.MaxDedicatedRouters = 2, 5
	c.MeanHomesPerPoP = 700
	c.HomesCapMult = 24
	c.BRASCapacity = 20000
	c.DNSServerENProb = 0.8
	c.DSLSigma = 0.45
	// Azureus-style attrition, calibrated to the paper's funnel: 14.6% of
	// the 156,658 addresses yield a latency (22,796 for Section 5), and
	// only ~26% of those show one stable upstream router from all seven
	// vantage points (5,904 for Section 3.2) — per-flow load balancing and
	// multihoming dominate that second cut.
	c.PingRespProbHome = 0.05
	c.TCPRespProbHome = 0.08
	c.PingRespProbCorp = 0.10
	c.TCPRespProbCorp = 0.18
	c.MultihomedProbHome = 0.74
	c.MultihomedProbCorp = 0.70
	return c
}

// Generate builds a Topology from cfg, deterministically from seed.
func Generate(cfg Config, seed int64) *Topology {
	src := rng.New(seed)
	t := &Topology{cfg: cfg, byIP: make(map[IPv4]HostID)}

	genCities(t, src.Split("cities"))
	genASes(t, src.Split("ases"))
	genPoPs(t, src.Split("pops"))
	alloc := newAddressPlan(t)
	genAccess(t, src.Split("access"), alloc)
	genDNS(t, src.Split("dns"))

	t.hubLat = buildHubLatencies(t, seed)
	buildHostFlat(t)
	t.shortcuts = shortcutModel{
		seed:    seed ^ 0x51C0_1D5E,
		onsetMs: cfg.ShortcutOnsetMs, fullMs: cfg.ShortcutFullMs,
		maxProb: cfg.ShortcutMaxProb, baseProb: cfg.ShortcutBaseProb,
		minFact: cfg.ShortcutMinFact, maxFact: cfg.ShortcutMaxFact,
	}
	computeLatencyFloors(t)
	return t
}

func genCities(t *Topology, src *rng.Source) {
	n := t.cfg.NCities
	if n > len(cityNames) {
		n = len(cityNames)
	}
	perm := src.Perm(len(cityNames))[:n]
	for i, pi := range perm {
		t.Cities = append(t.Cities, City{
			ID:   CityID(i),
			Name: cityNames[pi][0],
			Code: cityNames[pi][1],
			X:    src.Uniform(0, t.cfg.PlaneWidth),
			Y:    src.Uniform(0, t.cfg.PlaneHeight),
		})
	}
}

func genASes(t *Topology, src *rng.Source) {
	for i := 0; i < t.cfg.NASes; i++ {
		name := ispNames[i%len(ispNames)]
		if i >= len(ispNames) {
			name = fmt.Sprintf("%s%d", name, i/len(ispNames))
		}
		// Each AS owns a /12; low half is corporate space, high half is
		// residential space. Blocks from neighbouring ASes share shorter
		// prefixes, which is what gives the IP-prefix heuristic its
		// false positives at small prefix lengths (Figure 11).
		t.ASes = append(t.ASes, AS{
			ID:     ASID(i),
			Number: 3300 + 7*i,
			Name:   name,
			Blocks: []IPBlock{{Base: IPv4(uint32(16+i) << 20), Bits: 12}},
		})
	}
}

func genPoPs(t *Topology, src *rng.Source) {
	for asIdx := range t.ASes {
		cover := src.SplitN("coverage", asIdx)
		nCover := int(math.Round(t.cfg.ASCityCoverage * float64(len(t.Cities))))
		if nCover < 1 {
			nCover = 1
		}
		perm := cover.Perm(len(t.Cities))[:nCover]
		for _, cityIdx := range perm {
			pid := PoPID(len(t.PoPs))
			pop := PoP{ID: pid, AS: ASID(asIdx), City: CityID(cityIdx)}
			nCore := 1 + cover.Intn(2)
			for k := 0; k < nCore; k++ {
				pop.Core = append(pop.Core, t.addRouter(cover, ASID(asIdx), CityID(cityIdx), pid, KindCore, 0))
			}
			nBB := 1 + cover.Intn(2)
			for k := 0; k < nBB; k++ {
				pop.Backbone = append(pop.Backbone, t.addRouter(cover, ASID(asIdx), CityID(cityIdx), pid, KindBackbone, 0.1))
			}
			t.PoPs = append(t.PoPs, pop)
		}
	}
}

// addRouter creates a router, drawing anonymity and name misconfiguration.
func (t *Topology) addRouter(src *rng.Source, as ASID, city CityID, pop PoPID, kind RouterKind, coreLatMs float64) RouterID {
	id := RouterID(len(t.Routers))
	nameCity := city
	if src.Bool(t.cfg.MisconfiguredNameProb) && len(t.Cities) > 1 {
		for {
			nameCity = CityID(src.Intn(len(t.Cities)))
			if nameCity != city {
				break
			}
		}
	}
	t.Routers = append(t.Routers, Router{
		ID:        id,
		AS:        as,
		City:      city,
		PoP:       pop,
		Kind:      kind,
		Name:      routerName(kind, int(id), t.Cities[nameCity].Code, t.ASes[as].Name),
		NameCity:  nameCity,
		Anonymous: src.Bool(t.cfg.AnonymousRouterProb),
		CoreLatMs: coreLatMs,
	})
	return id
}

// addressPlan allocates /24 blocks and host addresses out of each AS's
// space, with a sequential cursor plus configured scatter. Sequential
// allocation is what makes short prefixes geographically meaningful.
type addressPlan struct {
	corpNext []uint64 // next sequential /24 index per AS (corporate half)
	homeNext []uint64 // next sequential /24 index per AS (residential half)
}

func newAddressPlan(t *Topology) *addressPlan {
	return &addressPlan{
		corpNext: make([]uint64, len(t.ASes)),
		homeNext: make([]uint64, len(t.ASes)),
	}
}

// corpBlocks and homeBlocks: each AS /12 is split at the /13 boundary.
func corpHalf(as *AS) IPBlock { return as.Blocks[0].SubBlock(13, 0) }
func homeHalf(as *AS) IPBlock { return as.Blocks[0].SubBlock(13, 1) }

// next24 returns the next /24 for the AS, sequentially or scattered.
func (p *addressPlan) next24(src *rng.Source, as *AS, home bool, scatter float64) IPBlock {
	half := corpHalf(as)
	next := &p.corpNext[as.ID]
	if home {
		half = homeHalf(as)
		next = &p.homeNext[as.ID]
	}
	total := uint64(1) << uint(24-half.Bits)
	if src.Bool(scatter) {
		// A scattered block: anywhere in the half. Collisions with
		// sequential blocks are acceptable noise (real allocations
		// overlap administratively too; hosts still get unique IPs from
		// the global uniqueness check in addHost).
		return half.SubBlock(24, uint64(src.Int63n(int64(total))))
	}
	idx := *next % total
	*next++
	return half.SubBlock(24, idx)
}

// addHost registers a host, assigning a unique IP within the preferred /24
// (falling back to neighbouring blocks on exhaustion).
func (t *Topology) addHost(src *rng.Source, en ENID, block IPBlock, lanLatMs float64, vlan int, home bool) HostID {
	id := HostID(len(t.Hosts))
	var ip IPv4
	for attempt := 0; ; attempt++ {
		candidate := block.Nth(uint64(1 + src.Intn(250)))
		if attempt > 40 {
			// Exhausted: walk forward through address space.
			candidate = block.Base + IPv4(attempt*251%65000)
		}
		if _, taken := t.byIP[candidate]; !taken {
			ip = candidate
			break
		}
	}
	cfg := &t.cfg
	pingP, tcpP, mhP := cfg.PingRespProbCorp, cfg.TCPRespProbCorp, cfg.MultihomedProbCorp
	if home {
		pingP, tcpP, mhP = cfg.PingRespProbHome, cfg.TCPRespProbHome, cfg.MultihomedProbHome
	}
	h := Host{
		ID: id, EN: en, IP: ip, VLAN: vlan, LANLatMs: lanLatMs,
		RespondsPing: src.Bool(pingP),
		RespondsTCP:  src.Bool(tcpP),
		Multihomed:   src.Bool(mhP),
		AltUpstream:  NoRouter,
	}
	t.Hosts = append(t.Hosts, h)
	t.byIP[ip] = id
	t.ENs[en].Hosts = append(t.ENs[en].Hosts, id)
	return id
}

// genAccess builds, for every PoP, its aggregation layer, corporate
// end-networks and home subscriber population.
func genAccess(t *Topology, src *rng.Source, alloc *addressPlan) {
	for pi := range t.PoPs {
		pop := &t.PoPs[pi]
		psrc := src.SplitN("pop", pi)
		as := &t.ASes[pop.AS]

		// Per-PoP mean hub latency: the paper's clustering condition is
		// that the PoP's end-networks share approximately this latency.
		clusterMean := psrc.Uniform(t.cfg.ClusterHubLatMinMs, t.cfg.ClusterHubLatMaxMs)

		// Shared aggregation routers (the funnel of Figure 1).
		nENs := t.cfg.MinENsPerPoP
		if t.cfg.MaxENsPerPoP > t.cfg.MinENsPerPoP {
			nENs += psrc.Intn(t.cfg.MaxENsPerPoP - t.cfg.MinENsPerPoP + 1)
		}
		nAgg := nENs/4 + 1
		aggs := make([]RouterID, 0, nAgg)
		aggLats := make([]float64, 0, nAgg)
		for k := 0; k < nAgg; k++ {
			// The aggregation router sits at a fixed position between the
			// core and the end-networks it serves.
			lat := clusterMean * psrc.Uniform(0.2, 0.5)
			aggs = append(aggs, t.addRouter(psrc, pop.AS, pop.City, pop.ID, KindAgg, lat))
			aggLats = append(aggLats, lat)
		}

		// Corporate end-networks.
		for e := 0; e < nENs; e++ {
			esrc := psrc.SplitN("en", e)
			enID := ENID(len(t.ENs))
			hubLat := clusterMean * esrc.Uniform(1-t.cfg.HubLatSpread, 1+t.cfg.HubLatSpread)

			var chain []RouterID
			var chainLat []float64
			cum := 0.0
			if !esrc.Bool(t.cfg.DirectAttachProb) {
				// Attach through a shared aggregation router, at the
				// router's own fixed position.
				k := esrc.Intn(len(aggs))
				cum = aggLats[k]
				if cum > hubLat*0.6 {
					cum = hubLat * 0.6
				}
				chain = append(chain, aggs[k])
				chainLat = append(chainLat, cum)
			}
			nDed := t.cfg.MinDedicatedRouters
			if t.cfg.MaxDedicatedRouters > nDed {
				nDed += esrc.Intn(t.cfg.MaxDedicatedRouters - t.cfg.MinDedicatedRouters + 1)
			}
			for d := 0; d < nDed; d++ {
				remaining := hubLat - cum
				cum += remaining * float64(d+1) / float64(nDed+1) * esrc.Uniform(0.7, 1.3)
				if cum > hubLat || d == nDed-1 {
					cum = hubLat
				}
				// CoreLatMs must equal the chain's cumulative latency so
				// pinging the router agrees with the traceroute hop.
				r := t.addRouter(esrc, pop.AS, pop.City, pop.ID, KindAgg, cum)
				t.Routers[r].Customer = true
				chain = append(chain, r)
				chainLat = append(chainLat, cum)
			}

			en := EndNetwork{
				ID: enID, PoP: pop.ID,
				Prefix: alloc.next24(esrc, as, false, t.cfg.ScatterCorp),
				Domain: domainName(int(enID)),
				Chain:  chain, ChainLatMs: chainLat, HubLatMs: hubLat,
				VLANs: 1 + esrc.Intn(t.cfg.MaxVLANs),
			}
			t.ENs = append(t.ENs, en)
			pop.ENs = append(pop.ENs, enID)

			nHosts := t.cfg.MinHostsPerEN
			if t.cfg.MaxHostsPerEN > nHosts {
				nHosts += esrc.Intn(t.cfg.MaxHostsPerEN - t.cfg.MinHostsPerEN + 1)
			}
			for hI := 0; hI < nHosts; hI++ {
				vlan := esrc.Intn(t.ENs[enID].VLANs)
				hid := t.addHost(esrc, enID, t.ENs[enID].Prefix,
					esrc.Uniform(t.cfg.LANLatMinMs, t.cfg.LANLatMaxMs), vlan, false)
				if t.Hosts[hid].Multihomed {
					t.Hosts[hid].AltUpstream = aggs[esrc.Intn(len(aggs))]
				}
			}
		}

		// Home subscribers, behind BRAS aggregation routers.
		nHomes := int(psrc.Pareto(t.cfg.MeanHomesPerPoP*0.45, t.cfg.HomesPareto))
		maxHomes := int(t.cfg.MeanHomesPerPoP * t.cfg.HomesCapMult)
		if nHomes > maxHomes {
			nHomes = maxHomes
		}
		nBRAS := nHomes/t.cfg.BRASCapacity + 1
		brasRouters := make([]RouterID, 0, nBRAS)
		brasLats := make([]float64, 0, nBRAS)
		for k := 0; k < nBRAS; k++ {
			lat := psrc.Uniform(0.2, 0.8)
			brasRouters = append(brasRouters, t.addRouter(psrc, pop.AS, pop.City, pop.ID, KindAgg, lat))
			brasLats = append(brasLats, lat)
		}
		var homeBlock IPBlock
		homeInBlock := 0
		for hI := 0; hI < nHomes; hI++ {
			hsrc := psrc.SplitN("home", hI)
			brasIdx := hI * nBRAS / nHomes
			if homeInBlock == 0 || homeInBlock >= 220 {
				homeBlock = alloc.next24(hsrc, as, true, t.cfg.ScatterHome)
				homeInBlock = 0
			}
			homeInBlock++

			enID := ENID(len(t.ENs))
			dsl := math.Exp(math.Log(t.cfg.DSLMedianMs) + t.cfg.DSLSigma*hsrc.NormFloat64())
			if dsl < t.cfg.DSLMinMs {
				dsl = t.cfg.DSLMinMs
			}
			if dsl > t.cfg.DSLMaxMs {
				dsl = t.cfg.DSLMaxMs
			}
			en := EndNetwork{
				ID: enID, PoP: pop.ID,
				Prefix: homeBlock,
				IsHome: true,
				Chain:  []RouterID{brasRouters[brasIdx]},
				// The home "network" edge is the BRAS itself.
				ChainLatMs: []float64{brasLats[brasIdx]},
				HubLatMs:   brasLats[brasIdx],
				VLANs:      1,
			}
			t.ENs = append(t.ENs, en)
			pop.ENs = append(pop.ENs, enID)
			hid := t.addHost(hsrc, enID, homeBlock, dsl, 0, true)
			if t.Hosts[hid].Multihomed {
				// A second path: another BRAS where one exists, else the
				// PoP core (per-flow load balancing hides the BRAS from
				// some vantage points).
				alt := pop.Core[0]
				if len(brasRouters) > 1 {
					alt = brasRouters[(brasIdx+1)%len(brasRouters)]
				}
				t.Hosts[hid].AltUpstream = alt
			}
		}
	}
}

// genDNS deploys DNS servers into a fraction of corporate end-networks:
// each chosen network gets one or two servers, recursive and authoritative
// for the network's domain. With small probability the second server of a
// domain is physically hosted in some other end-network — the geographic
// domain splits the paper noticed in its same-domain pair analysis.
func genDNS(t *Topology, src *rng.Source) {
	var corpENs []ENID
	for i := range t.ENs {
		if !t.ENs[i].IsHome {
			corpENs = append(corpENs, ENID(i))
		}
	}
	for _, enID := range corpENs {
		esrc := src.SplitN("dnsen", int(enID))
		if !esrc.Bool(t.cfg.DNSServerENProb) {
			continue
		}
		en := &t.ENs[enID]
		domain := en.Domain
		nServers := 1 + esrc.Intn(3)
		for s := 0; s < nServers; s++ {
			hostEN := enID
			if s > 0 && esrc.Bool(t.cfg.DNSGeoSplitProb) && len(corpENs) > 1 {
				hostEN = corpENs[esrc.Intn(len(corpENs))]
			}
			hid := t.addHost(esrc, hostEN, t.ENs[hostEN].Prefix,
				esrc.Uniform(t.cfg.LANLatMinMs, t.cfg.LANLatMaxMs),
				esrc.Intn(t.ENs[hostEN].VLANs), false)
			h := &t.Hosts[hid]
			h.DNS = &DNSServer{Recursive: true, Domains: []string{domain}}
			// Name servers answer measurement probes.
			h.RespondsPing = true
			h.Multihomed = false
		}
	}
}

// DNSServers returns the IDs of all hosts that are DNS servers.
func (t *Topology) DNSServers() []HostID {
	var out []HostID
	for i := range t.Hosts {
		if t.Hosts[i].DNS != nil {
			out = append(out, HostID(i))
		}
	}
	return out
}

// HostsInEN returns the hosts of an end-network.
func (t *Topology) HostsInEN(id ENID) []HostID { return t.ENs[id].Hosts }
