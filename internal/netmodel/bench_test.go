package netmodel

import "testing"

func BenchmarkGenerateDefault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(DefaultConfig(), int64(i))
	}
}

func BenchmarkRTT(b *testing.B) {
	top := Generate(DefaultConfig(), 1)
	n := len(top.Hosts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = top.RTTms(HostID(i%n), HostID((i*7+3)%n))
	}
}

// BenchmarkTreeOneWayMs and BenchmarkRTTCacheHit live in benchhot_test.go,
// delegating to internal/benchhot so cmd/benchscale measures the same
// workloads.

func BenchmarkPath(b *testing.B) {
	top := Generate(DefaultConfig(), 1)
	n := len(top.Hosts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = top.Path(HostID(i%n), HostID((i*7+3)%n))
	}
}
