package netmodel

import (
	"math/rand"
	"testing"
)

// TestMinOneWayMsLowerBounds samples random host pairs and asserts the
// Generate-time floors actually lower-bound the priced latencies: the
// global floor against every pair, the cross-PoP floor against cross-PoP
// pairs. Both floors must also be strictly positive — the sharded kernel
// turns the cross-PoP one into its lookahead window, and a zero window
// would serialize every shard.
func TestMinOneWayMsLowerBounds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		top := Generate(DefaultConfig(), seed)
		n := top.NumHosts()
		if top.MinOneWayMs() <= 0 {
			t.Fatalf("seed %d: MinOneWayMs %v not positive", seed, top.MinOneWayMs())
		}
		if top.MinCrossPoPOneWayMs() < top.MinOneWayMs() {
			t.Fatalf("seed %d: cross-PoP floor %v below global floor %v",
				seed, top.MinCrossPoPOneWayMs(), top.MinOneWayMs())
		}
		src := rand.New(rand.NewSource(seed))
		for i := 0; i < 20000; i++ {
			a := HostID(src.Intn(n))
			b := HostID(src.Intn(n))
			if a == b {
				continue
			}
			ow := top.OneWayMs(a, b)
			if ow < top.MinOneWayMs() {
				t.Fatalf("seed %d: OneWayMs(%d,%d)=%v below floor %v",
					seed, a, b, ow, top.MinOneWayMs())
			}
			if top.PoPOfHost(a) != top.PoPOfHost(b) && ow < top.MinCrossPoPOneWayMs() {
				t.Fatalf("seed %d: cross-PoP OneWayMs(%d,%d)=%v below cross-PoP floor %v",
					seed, a, b, ow, top.MinCrossPoPOneWayMs())
			}
		}
	}
}

// TestShardByPoP checks the partition invariants the sharded kernel's
// lookahead argument rests on: every host is assigned, PoPs are never
// split across shards, and k=1 puts everything on shard 0.
func TestShardByPoP(t *testing.T) {
	top := Generate(DefaultConfig(), 3)
	for _, k := range []int{1, 2, 4, 7} {
		assign := top.ShardByPoP(k)
		if len(assign) != top.NumHosts() {
			t.Fatalf("k=%d: %d assignments for %d hosts", k, len(assign), top.NumHosts())
		}
		popShard := map[PoPID]int32{}
		counts := make([]int, k)
		for h, s := range assign {
			if s < 0 || int(s) >= k {
				t.Fatalf("k=%d: host %d on shard %d", k, h, s)
			}
			counts[s]++
			p := top.PoPOfHost(HostID(h))
			if prev, ok := popShard[p]; ok && prev != s {
				t.Fatalf("k=%d: PoP %d split across shards %d and %d", k, p, prev, s)
			}
			popShard[p] = s
		}
		if k == 1 && counts[0] != top.NumHosts() {
			t.Fatalf("k=1 did not place all hosts on shard 0")
		}
	}
}
