package netmodel

import (
	"testing"
	"testing/quick"
)

func testTopology(t *testing.T) *Topology {
	t.Helper()
	return Generate(DefaultConfig(), 1)
}

func TestIPv4Prefix(t *testing.T) {
	ip := IPv4(0xC0A80164) // 192.168.1.100
	if got := ip.Prefix(24); got != 0xC0A80100 {
		t.Fatalf("Prefix(24) = %08x", uint32(got))
	}
	if got := ip.Prefix(16); got != 0xC0A80000 {
		t.Fatalf("Prefix(16) = %08x", uint32(got))
	}
	if ip.Prefix(0) != 0 {
		t.Fatal("Prefix(0) != 0")
	}
	if ip.Prefix(32) != ip {
		t.Fatal("Prefix(32) != identity")
	}
}

func TestIPv4PrefixProperties(t *testing.T) {
	err := quick.Check(func(a, b uint32, bits uint8) bool {
		n := int(bits % 33)
		x, y := IPv4(a), IPv4(b)
		// Idempotence and symmetry.
		if x.Prefix(n).Prefix(n) != x.Prefix(n) {
			return false
		}
		if x.SharesPrefix(y, n) != y.SharesPrefix(x, n) {
			return false
		}
		// Longer agreement implies shorter agreement.
		if n > 0 && x.SharesPrefix(y, n) && !x.SharesPrefix(y, n-1) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIPBlock(t *testing.T) {
	b := IPBlock{Base: 0x10000000, Bits: 24}
	if b.Size() != 256 {
		t.Fatalf("Size = %d", b.Size())
	}
	if !b.Contains(0x100000FF) {
		t.Fatal("Contains failed")
	}
	if b.Contains(0x10000100) {
		t.Fatal("Contains accepted outside address")
	}
	if b.Nth(5) != 0x10000005 {
		t.Fatalf("Nth(5) = %v", b.Nth(5))
	}
	sub := IPBlock{Base: 0x10000000, Bits: 12}.SubBlock(24, 3)
	if sub.Base != 0x10000300 || sub.Bits != 24 {
		t.Fatalf("SubBlock = %+v", sub)
	}
}

func TestIPv4String(t *testing.T) {
	if s := IPv4(0x01020304).String(); s != "1.2.3.4" {
		t.Fatalf("String = %q", s)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(), 9)
	b := Generate(DefaultConfig(), 9)
	if len(a.Hosts) != len(b.Hosts) || len(a.Routers) != len(b.Routers) {
		t.Fatal("same seed produced different topology sizes")
	}
	for i := range a.Hosts {
		if a.Hosts[i].IP != b.Hosts[i].IP {
			t.Fatalf("host %d IP differs", i)
		}
	}
	c := Generate(DefaultConfig(), 10)
	if len(c.Hosts) == len(a.Hosts) && c.Hosts[0].IP == a.Hosts[0].IP && c.Hosts[len(c.Hosts)-1].IP == a.Hosts[len(a.Hosts)-1].IP {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestTopologyInvariants(t *testing.T) {
	top := testTopology(t)
	if len(top.Hosts) == 0 || len(top.ENs) == 0 || len(top.PoPs) == 0 {
		t.Fatal("empty topology")
	}

	// Unique IPs.
	seen := make(map[IPv4]bool, len(top.Hosts))
	for i := range top.Hosts {
		ip := top.Hosts[i].IP
		if seen[ip] {
			t.Fatalf("duplicate IP %v", ip)
		}
		seen[ip] = true
	}

	// EN membership is consistent both ways; chain latencies cumulative.
	for i := range top.ENs {
		en := &top.ENs[i]
		if len(en.Chain) != len(en.ChainLatMs) {
			t.Fatalf("EN %d chain/latency length mismatch", i)
		}
		prev := 0.0
		for j, lat := range en.ChainLatMs {
			if lat < prev-1e-9 {
				t.Fatalf("EN %d chain latency not cumulative at %d: %v < %v", i, j, lat, prev)
			}
			prev = lat
		}
		if len(en.ChainLatMs) > 0 {
			last := en.ChainLatMs[len(en.ChainLatMs)-1]
			if last != en.HubLatMs {
				t.Fatalf("EN %d hub latency %v != edge cumulative %v", i, en.HubLatMs, last)
			}
		}
		for _, h := range en.Hosts {
			if top.Hosts[h].EN != ENID(i) {
				t.Fatalf("host %d not back-linked to EN %d", h, i)
			}
		}
	}

	// Every router referenced by a chain belongs to the EN's PoP.
	for i := range top.ENs {
		en := &top.ENs[i]
		for _, r := range en.Chain {
			if top.Routers[r].PoP != en.PoP {
				t.Fatalf("EN %d chain router %d in wrong PoP", i, r)
			}
		}
	}

	// PoPs have core routers and back-link their ENs.
	for i := range top.PoPs {
		p := &top.PoPs[i]
		if len(p.Core) == 0 {
			t.Fatalf("PoP %d has no core routers", i)
		}
		for _, en := range p.ENs {
			if top.ENs[en].PoP != PoPID(i) {
				t.Fatalf("PoP %d EN %d not back-linked", i, en)
			}
		}
	}
}

func TestHostByIP(t *testing.T) {
	top := testTopology(t)
	for i := 0; i < len(top.Hosts); i += 97 {
		id, ok := top.HostByIP(top.Hosts[i].IP)
		if !ok || id != HostID(i) {
			t.Fatalf("HostByIP(%v) = %v, %v", top.Hosts[i].IP, id, ok)
		}
	}
	if _, ok := top.HostByIP(0xFFFFFFFF); ok {
		t.Fatal("HostByIP found a non-existent address")
	}
}

func TestRTTSymmetricNonNegative(t *testing.T) {
	top := testTopology(t)
	n := len(top.Hosts)
	for trial := 0; trial < 500; trial++ {
		a := HostID((trial * 131) % n)
		b := HostID((trial*313 + 7) % n)
		ra, rb := top.RTTms(a, b), top.RTTms(b, a)
		if ra != rb {
			t.Fatalf("RTT not symmetric: %v vs %v", ra, rb)
		}
		if a != b && ra <= 0 {
			t.Fatalf("RTT(%d,%d) = %v", a, b, ra)
		}
	}
	if top.RTTms(3, 3) != 0 {
		t.Fatal("self RTT nonzero")
	}
}

func TestShortcutNeverLengthens(t *testing.T) {
	top := testTopology(t)
	n := len(top.Hosts)
	for trial := 0; trial < 2000; trial++ {
		a := HostID((trial * 17) % n)
		b := HostID((trial*41 + 3) % n)
		if top.OneWayMs(a, b) > top.TreeOneWayMs(a, b)+1e-12 {
			t.Fatalf("shortcut lengthened path between %d and %d", a, b)
		}
	}
}

// TestLatencyGradation verifies the paper's core structural assumption
// (validated by its Section 3.1): intra-end-network latencies are an order
// of magnitude smaller than intra-cluster latencies, which in turn are
// smaller than typical cross-PoP latencies.
func TestLatencyGradation(t *testing.T) {
	top := testTopology(t)

	var sameEN, samePoP, crossPoP []float64
	for i := range top.ENs {
		en := &top.ENs[i]
		if en.IsHome || len(en.Hosts) < 2 {
			continue
		}
		sameEN = append(sameEN, top.RTTms(en.Hosts[0], en.Hosts[1]))
	}
	for pi := range top.PoPs {
		p := &top.PoPs[pi]
		var first HostID = -1
		for _, en := range p.ENs {
			if top.ENs[en].IsHome || len(top.ENs[en].Hosts) == 0 {
				continue
			}
			h := top.ENs[en].Hosts[0]
			if first < 0 {
				first = h
			} else {
				samePoP = append(samePoP, top.RTTms(first, h))
				break
			}
		}
	}
	// A few cross-PoP samples.
	for pi := 0; pi+1 < len(top.PoPs) && len(crossPoP) < 50; pi += 2 {
		a, b := &top.PoPs[pi], &top.PoPs[pi+1]
		if len(a.ENs) == 0 || len(b.ENs) == 0 {
			continue
		}
		ha := firstHost(top, a)
		hb := firstHost(top, b)
		if ha >= 0 && hb >= 0 && top.City(a.City) != top.City(b.City) {
			crossPoP = append(crossPoP, top.RTTms(ha, hb))
		}
	}

	if len(sameEN) == 0 || len(samePoP) == 0 || len(crossPoP) == 0 {
		t.Fatalf("insufficient samples: %d/%d/%d", len(sameEN), len(samePoP), len(crossPoP))
	}
	mEN := median(sameEN)
	mPoP := median(samePoP)
	mX := median(crossPoP)
	if mEN*5 > mPoP {
		t.Fatalf("intra-EN median %v not ≪ intra-cluster median %v", mEN, mPoP)
	}
	if mPoP > mX {
		t.Fatalf("intra-cluster median %v not < cross-PoP median %v", mPoP, mX)
	}
	if mEN > 0.5 {
		t.Fatalf("intra-EN RTT %v ms, want sub-millisecond", mEN)
	}
}

func firstHost(top *Topology, p *PoP) HostID {
	for _, en := range p.ENs {
		if len(top.ENs[en].Hosts) > 0 {
			return top.ENs[en].Hosts[0]
		}
	}
	return -1
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// TestClusteringCondition verifies the generator actually produces the
// paper's clustering condition: end-networks of a PoP sit at roughly equal
// latencies from the hub.
func TestClusteringCondition(t *testing.T) {
	top := testTopology(t)
	spread := top.Config().HubLatSpread
	for pi := range top.PoPs {
		p := &top.PoPs[pi]
		var lats []float64
		for _, en := range p.ENs {
			if !top.ENs[en].IsHome {
				lats = append(lats, top.ENs[en].HubLatMs)
			}
		}
		if len(lats) < 2 {
			continue
		}
		lo, hi := lats[0], lats[0]
		for _, l := range lats {
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		maxRatio := (1 + spread) / (1 - spread)
		if hi/lo > maxRatio*1.01 {
			t.Fatalf("PoP %d hub latencies spread %v..%v exceeds configured ratio %v", pi, lo, hi, maxRatio)
		}
	}
}

func TestPathEndsAtUpstreamRouter(t *testing.T) {
	top := testTopology(t)
	n := len(top.Hosts)
	checked := 0
	for i := 0; i < n && checked < 300; i += 7 {
		from := HostID(i)
		to := HostID((i*577 + 11) % n)
		if from == to || top.Hosts[to].Multihomed || top.SameEN(from, to) {
			continue
		}
		hops := top.Path(from, to)
		if len(hops) == 0 {
			t.Fatalf("empty path between distinct ENs %d -> %d", from, to)
		}
		last := hops[len(hops)-1]
		if want := top.HostEN(to).EdgeRouter(); last.Router != want {
			t.Fatalf("path to %d ends at router %d, want edge %d", to, last.Router, want)
		}
		// Hop RTTs along the source's climb must be reachable and the
		// final hop RTT must not exceed the full tree RTT.
		if last.RTTms > top.TreeRTTms(from, to)+1e-9 {
			t.Fatalf("last hop RTT %v exceeds end-to-end %v", last.RTTms, top.TreeRTTms(from, to))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func TestPathSameENIsEmpty(t *testing.T) {
	top := testTopology(t)
	for i := range top.ENs {
		en := &top.ENs[i]
		if len(en.Hosts) >= 2 {
			if hops := top.Path(en.Hosts[0], en.Hosts[1]); len(hops) != 0 {
				t.Fatalf("intra-EN path has %d router hops", len(hops))
			}
			return
		}
	}
}

func TestMultihomedSeenDifferently(t *testing.T) {
	top := testTopology(t)
	// Find a multihomed host and two observers in different ENs; their
	// observed upstream routers must not always agree.
	var mh HostID = -1
	for i := range top.Hosts {
		if top.Hosts[i].Multihomed && top.Hosts[i].AltUpstream != NoRouter {
			mh = HostID(i)
			break
		}
	}
	if mh < 0 {
		t.Skip("no multihomed host in small topology")
	}
	seen := make(map[RouterID]bool)
	for i := 0; i < len(top.Hosts) && len(seen) < 2; i += 31 {
		from := HostID(i)
		if from == mh || top.SameEN(from, mh) {
			continue
		}
		if r := top.LastValidRouter(from, mh); r != NoRouter {
			seen[r] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("multihomed host %d always observed via one upstream", mh)
	}
}

func TestDNSServersExist(t *testing.T) {
	top := testTopology(t)
	servers := top.DNSServers()
	if len(servers) == 0 {
		t.Fatal("no DNS servers generated")
	}
	for _, s := range servers {
		h := top.Host(s)
		if h.DNS == nil || len(h.DNS.Domains) == 0 {
			t.Fatalf("server %d lacks DNS role", s)
		}
		if !h.DNS.Recursive {
			t.Fatalf("server %d not recursive", s)
		}
	}
}

func TestRouterRTTAlongOwnChain(t *testing.T) {
	top := testTopology(t)
	for i := range top.ENs {
		en := &top.ENs[i]
		if len(en.Chain) == 0 || len(en.Hosts) == 0 {
			continue
		}
		h := en.Hosts[0]
		// RTT to the edge router must be smaller than RTT to the core.
		edge := top.RouterRTTms(h, en.EdgeRouter())
		core := top.RouterRTTms(h, top.PoPs[en.PoP].Core[0])
		if edge > core+1e-9 {
			t.Fatalf("EN %d: edge router RTT %v > core RTT %v", i, edge, core)
		}
		return
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(1.5).Microseconds() != 1500 {
		t.Fatal("Duration(1.5ms) wrong")
	}
	if Ms(Duration(2.25)) != 2.25 {
		t.Fatal("Ms(Duration) not inverse")
	}
}
