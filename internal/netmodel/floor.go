package netmodel

import "sort"

// This file computes latency floors of the generated topology: analytic
// lower bounds on OneWayMs over host pairs, computed once at Generate time
// (never by enumerating the O(N²) pairs — the floors must be available at
// million-host populations). The sharded simulation kernel (internal/sim)
// uses the cross-PoP floor as its conservative lookahead window: hosts are
// partitioned across shards along PoP boundaries (ShardByPoP), so every
// cross-shard message travels at least MinCrossPoPOneWayMs of virtual time
// and a window of that length can execute without inter-shard
// synchronization.
//
// Both floors follow the TreeOneWayMs pricing decomposition exactly
// (routing.go) and then account for the shortcut model: OneWayMs is the
// tree latency times a factor that is either 1 or in [minFact, maxFact],
// so multiplying a tree-latency lower bound by min(1, minFact) bounds the
// true latency from below. A further 0.1% shave absorbs floating-point
// rounding between the bound's summation order and the priced path's, plus
// the sub-nanosecond truncation of the wire layer's duration split.

// latencyFloors holds the Generate-time results.
type latencyFloors struct {
	// minOneWayMs lower-bounds OneWayMs over all distinct host pairs.
	minOneWayMs float64
	// minCrossPoPMs lower-bounds OneWayMs over pairs in different PoPs.
	minCrossPoPMs float64
	// popMinToCore[p] is the smallest flat.toCore among PoP p's hosts
	// (+Inf for a PoP with no hosts); kept for tests and diagnostics.
	popMinToCore []float64
}

// floorSafety absorbs float summation-order differences between the bound
// and the priced path. Shaving the floor down can only make it more
// conservative.
const floorSafety = 0.999

// computeLatencyFloors fills t.floors. Called at the end of Generate,
// after the flat table, the hub latencies and the shortcut model exist.
func computeLatencyFloors(t *Topology) {
	inf := 1e300
	nPoP := len(t.PoPs)
	popMin := make([]float64, nPoP)
	for i := range popMin {
		popMin[i] = inf
	}
	// Per-PoP minimum host-to-core latency, and the global minimum LAN
	// latency: every diff-EN price includes both endpoints' LAN legs (the
	// same-PoP chain walk never climbs below the hosts' own LAN latency,
	// and hub minus any chain prefix is non-negative by construction).
	minLan := inf
	for h := range t.Hosts {
		if tc := t.flat.toCore[h]; tc < popMin[t.flat.pop[h]] {
			popMin[t.flat.pop[h]] = tc
		}
		if l := t.flat.lan[h]; l < minLan {
			minLan = l
		}
	}
	// Same-EN pairs price as lan[a]+lan[b] (plus a non-negative VLAN
	// penalty): the per-EN sum of the two smallest LAN legs bounds them,
	// and 2*minLan bounds every other pair's two LAN legs.
	enTwoSmallest := make(map[ENID][2]float64)
	for h := range t.Hosts {
		en := t.flat.en[h]
		l := t.flat.lan[h]
		pair, ok := enTwoSmallest[en]
		if !ok {
			enTwoSmallest[en] = [2]float64{l, inf}
			continue
		}
		if l < pair[0] {
			pair[0], pair[1] = l, pair[0]
		} else if l < pair[1] {
			pair[1] = l
		}
		enTwoSmallest[en] = pair
	}
	minSameEN := inf
	for _, pair := range enTwoSmallest {
		if pair[1] < inf && pair[0]+pair[1] < minSameEN {
			minSameEN = pair[0] + pair[1]
		}
	}
	// Cross-PoP pairs price as toCore[a] + hub(pa,pb) + toCore[b] (the
	// hub[b]+lan[b] tail sums the same two operands).
	minCross := inf
	for a := 0; a < nPoP; a++ {
		if popMin[a] >= inf {
			continue
		}
		for b := a + 1; b < nPoP; b++ {
			if popMin[b] >= inf {
				continue
			}
			if v := popMin[a] + t.hubLat.oneWay(PoPID(a), PoPID(b)) + popMin[b]; v < minCross {
				minCross = v
			}
		}
	}
	// Shortcut factor: 1 below 1 ms of tree latency, else >= minFact.
	fact := 1.0
	if (t.shortcuts.maxProb > 0 || t.shortcuts.baseProb > 0) && t.shortcuts.minFact < 1 {
		fact = t.shortcuts.minFact
	}
	global := 2 * minLan
	if minSameEN < global {
		global = minSameEN
	}
	if minCross < global {
		global = minCross
	}
	t.floors = latencyFloors{
		minOneWayMs:   global * fact * floorSafety,
		minCrossPoPMs: minCross * fact * floorSafety,
		popMinToCore:  popMin,
	}
}

// MinOneWayMs returns a positive lower bound on OneWayMs over all distinct
// host pairs, computed once at Generate time consistently with the
// TreeOneWayMs pricing (per-EN LAN-leg sums, per-PoP core minima, the hub
// table) and the shortcut model's minimum factor.
func (t *Topology) MinOneWayMs() float64 { return t.floors.minOneWayMs }

// MinCrossPoPOneWayMs returns a positive lower bound on OneWayMs over host
// pairs attached to different PoPs. This is the sharded kernel's lookahead
// window: with hosts partitioned along PoP boundaries, every cross-shard
// message is a cross-PoP message and therefore travels at least this long.
func (t *Topology) MinCrossPoPOneWayMs() float64 { return t.floors.minCrossPoPMs }

// PoPOfHost returns the PoP a host attaches to, from the flat table.
func (t *Topology) PoPOfHost(h HostID) PoPID { return t.flat.pop[h] }

// ShardByPoP partitions the hosts into k shards along PoP boundaries and
// returns the per-host shard index. PoPs are assigned whole — that is what
// makes MinCrossPoPOneWayMs a valid lookahead for cross-shard traffic at
// ANY k, including the k=1 baseline — using deterministic greedy LPT on
// host counts (largest PoP first into the least-loaded shard, ties by PoP
// id then shard index), so the shards balance within the largest single
// PoP's population.
func (t *Topology) ShardByPoP(k int) []int32 {
	if k < 1 {
		k = 1
	}
	counts := make([]int, len(t.PoPs))
	for h := range t.Hosts {
		counts[t.flat.pop[h]]++
	}
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})
	load := make([]int, k)
	popShard := make([]int32, len(counts))
	for _, p := range order {
		best := 0
		for s := 1; s < k; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		popShard[p] = int32(best)
		load[best] += counts[p]
	}
	out := make([]int32, len(t.Hosts))
	for h := range t.Hosts {
		out[h] = popShard[t.flat.pop[h]]
	}
	return out
}
