package kargerruhl

import (
	"math"
	"testing"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/testmat"
)

func TestBallInvariants(t *testing.T) {
	m := testmat.Euclidean(250, 1)
	net := overlay.NewNetwork(m)
	members, _ := overlay.Split(250, 20, 2)
	cfg := DefaultConfig()
	o := New(net, members, cfg, 3)

	for _, id := range members {
		balls := o.BallsOf(id)
		if len(balls) != cfg.Scales {
			t.Fatalf("node %d has %d scales", id, len(balls))
		}
		for i, ball := range balls {
			if len(ball) > cfg.SampleSize {
				t.Fatalf("ball %d holds %d > %d", i, len(ball), cfg.SampleSize)
			}
			radius := cfg.BaseMs * math.Pow(2, float64(i))
			for _, c := range ball {
				if c == id {
					t.Fatal("node sampled itself")
				}
				l, ok := o.LatOf(id, c)
				if !ok {
					t.Fatal("no cached latency for ball member")
				}
				if i != cfg.Scales-1 && l > radius+1e-9 {
					t.Fatalf("ball %d (radius %v) contains node at %v", i, radius, l)
				}
			}
		}
	}
}

func TestBallsNest(t *testing.T) {
	// Every inner-ball member is eligible for all outer balls; with full
	// candidate knowledge (small population), inner balls are subsets of
	// the union of outer candidates — verify monotone counts of eligible
	// members: ball i+1 saw at least as many candidates as ball i.
	m := testmat.Euclidean(120, 5)
	net := overlay.NewNetwork(m)
	members, _ := overlay.Split(120, 10, 2)
	o := New(net, members, DefaultConfig(), 3)
	for _, id := range members {
		n := o.nodes[id]
		for i := 1; i < len(n.seen); i++ {
			if n.seen[i] < n.seen[i-1] {
				t.Fatalf("node %d: ball %d saw %d < ball %d's %d", id, i, n.seen[i], i-1, n.seen[i-1])
			}
		}
	}
}

func TestFindNearestEuclidean(t *testing.T) {
	const n = 400
	m := testmat.Euclidean(n, 7)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(n, 40, 5)
	o := New(net, members, DefaultConfig(), 9)

	good := 0
	for _, tgt := range targets {
		res := o.FindNearest(tgt)
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.Peer == oracle.Peer || res.LatencyMs <= 2*oracle.LatencyMs+0.5 {
			good++
		}
		if res.Probes <= 0 {
			t.Fatal("no probes recorded")
		}
	}
	if good < len(targets)*6/10 {
		t.Fatalf("only %d/%d queries near-optimal in growth-restricted space", good, len(targets))
	}
}

func TestClusteringDefeatsWalk(t *testing.T) {
	m, gt := testmat.Clustered(100, 1000, 11)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(m.N(), 80, 3)
	o := New(net, members, DefaultConfig(), 5)
	exact := 0
	for _, tgt := range targets {
		res := o.FindNearest(tgt)
		if res.Peer >= 0 && gt.SameEN(res.Peer, tgt) {
			exact++
		}
	}
	if frac := float64(exact) / float64(len(targets)); frac > 0.4 {
		t.Fatalf("Karger-Ruhl exact rate %v under clustering; expected failure", frac)
	}
}

func TestQueryTerminates(t *testing.T) {
	m := testmat.Euclidean(150, 3)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(150, 10, 1)
	o := New(net, members, DefaultConfig(), 2)
	for _, tgt := range targets {
		res := o.FindNearest(tgt)
		if res.Hops >= DefaultConfig().MaxHops {
			t.Fatalf("walk hit the hop cap")
		}
		if res.Peer < 0 {
			t.Fatal("no peer")
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.SampleSize = 0
	New(overlay.NewNetwork(testmat.Euclidean(10, 1)), []int{0, 1}, cfg, 1)
}
