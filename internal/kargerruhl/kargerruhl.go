// Package kargerruhl implements the Karger–Ruhl nearest-neighbour scheme
// for growth-restricted metrics (STOC 2002) in its distance-based-sampling
// form: every node maintains, for each distance scale 2^i, a bounded random
// sample of the nodes within that ball of itself. A query walks from a
// random node: the handling node measures its distance d to the target,
// probes its ball sample at scale ~d, and moves to any sampled node closer
// to the target, halving (in expectation) the distance per step — provided
// the growth-restriction assumption holds. Under the paper's clustering
// condition it does not, and the walk degenerates into random probing of
// the cluster.
package kargerruhl

import (
	"fmt"
	"math"
	"sort"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// Config parameterises the sampling scheme.
type Config struct {
	// BaseMs is the radius of the smallest ball (scale 0).
	BaseMs float64
	// Scales is the number of distance scales (ball i has radius
	// BaseMs·2^i; the last ball covers everything).
	Scales int
	// SampleSize bounds each ball's sample.
	SampleSize int
	// CandidatesPerNode is the gossip view used to fill ball samples.
	CandidatesPerNode int
	// MaxHops caps a query walk.
	MaxHops int
}

// DefaultConfig mirrors the Meridian-comparable configuration.
func DefaultConfig() Config {
	return Config{
		BaseMs:            1,
		Scales:            9,
		SampleSize:        16,
		CandidatesPerNode: 192,
		MaxHops:           64,
	}
}

type node struct {
	id int
	// balls[i] holds sampled node ids within radius BaseMs·2^i.
	balls [][]int
	// seen[i] counts candidates eligible for ball i (reservoir sampling).
	seen []int
	// lat caches measured latencies to sampled nodes.
	lat map[int]float64
}

// Overlay is a Karger–Ruhl sampling overlay.
type Overlay struct {
	cfg     Config
	net     *overlay.Network
	members []int
	nodes   map[int]*node
	src     *rng.Source
}

// New builds the overlay: every member samples candidates, measures them
// (maintenance probes), and files them into every ball large enough to
// contain them, trimming each ball to a random SampleSize subset.
func New(net *overlay.Network, members []int, cfg Config, seed int64) *Overlay {
	if cfg.Scales <= 0 || cfg.SampleSize <= 0 || cfg.BaseMs <= 0 {
		panic(fmt.Sprintf("kargerruhl: invalid config %+v", cfg))
	}
	o := &Overlay{
		cfg:     cfg,
		net:     net,
		members: append([]int(nil), members...),
		nodes:   make(map[int]*node, len(members)),
		src:     rng.New(seed),
	}
	for _, id := range members {
		o.nodes[id] = &node{
			id:    id,
			balls: make([][]int, cfg.Scales),
			seen:  make([]int, cfg.Scales),
			lat:   make(map[int]float64),
		}
	}
	for _, id := range members {
		o.fill(o.nodes[id])
	}
	return o
}

func (o *Overlay) fill(n *node) {
	cands := o.sample(n.id)
	for _, c := range cands {
		l := o.net.MaintProbe(n.id, c)
		n.lat[c] = l
		// Insert into every ball that contains it, reservoir-sampling
		// (Algorithm R) so each ball is a uniform sample of eligible
		// candidates despite the size bound.
		for i := 0; i < o.cfg.Scales; i++ {
			radius := o.cfg.BaseMs * math.Pow(2, float64(i))
			if l > radius && i != o.cfg.Scales-1 {
				continue // outermost ball covers everything
			}
			n.seen[i]++
			if len(n.balls[i]) < o.cfg.SampleSize {
				n.balls[i] = append(n.balls[i], c)
			} else if j := o.src.Intn(n.seen[i]); j < o.cfg.SampleSize {
				n.balls[i][j] = c
			}
		}
	}
}

func (o *Overlay) sample(self int) []int {
	if len(o.members)-1 <= o.cfg.CandidatesPerNode {
		out := make([]int, 0, len(o.members)-1)
		for _, m := range o.members {
			if m != self {
				out = append(out, m)
			}
		}
		return out
	}
	seen := map[int]bool{self: true}
	out := make([]int, 0, o.cfg.CandidatesPerNode)
	for len(out) < o.cfg.CandidatesPerNode {
		c := o.members[o.src.Intn(len(o.members))]
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// scaleFor returns the ball index whose radius just covers distance d.
func (o *Overlay) scaleFor(d float64) int {
	if d <= o.cfg.BaseMs {
		return 0
	}
	if math.IsInf(d, 1) {
		// No distance estimate yet (the walk started at the searcher
		// itself): look in the widest balls. int(Ceil(Log2(+Inf))) would
		// be garbage, not a clamp.
		return o.cfg.Scales - 1
	}
	i := int(math.Ceil(math.Log2(d / o.cfg.BaseMs)))
	if i >= o.cfg.Scales {
		i = o.cfg.Scales - 1
	}
	return i
}

// FindNearest implements overlay.Finder.
func (o *Overlay) FindNearest(target int) overlay.Result {
	cur := o.members[o.src.Intn(len(o.members))]
	visited := map[int]bool{cur: true, target: true}
	var probes int64
	hops := 0

	// The walk can start at the searcher itself (it is a member too): its
	// ball samples still steer the walk from the widest scale, but it is
	// not a candidate and costs no probe.
	d := math.Inf(1)
	bestID, bestLat := -1, d
	if cur != target {
		d = o.net.Probe(cur, target)
		probes++
		bestID, bestLat = cur, d
	}

	for hops < o.cfg.MaxHops {
		n := o.nodes[cur]
		// Probe the ball sample at the target's scale, plus the next
		// scale up (the Karger-Ruhl walk looks within distance ~2d).
		scale := o.scaleFor(d)
		cands := make([]int, 0, 2*o.cfg.SampleSize)
		for s := scale; s <= scale+1 && s < o.cfg.Scales; s++ {
			for _, c := range n.balls[s] {
				if !visited[c] {
					cands = append(cands, c)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Ints(cands)
		minID, minLat := -1, math.Inf(1)
		for _, c := range cands {
			l := o.net.Probe(c, target)
			probes++
			visited[c] = true
			if l < minLat {
				minID, minLat = c, l
			}
			if l < bestLat {
				bestID, bestLat = c, l
			}
		}
		if minID < 0 || minLat >= d {
			break // no progress: in a growth-restricted space this means done
		}
		cur, d = minID, minLat
		hops++
	}
	return overlay.Result{Peer: bestID, LatencyMs: bestLat, Probes: probes, Hops: hops}
}

// Members returns the overlay membership.
func (o *Overlay) Members() []int { return o.members }

// BallsOf exposes a node's ball samples (tests).
func (o *Overlay) BallsOf(id int) [][]int { return o.nodes[id].balls }

// LatOf exposes a node's cached latency to a sampled peer (tests).
func (o *Overlay) LatOf(id, peer int) (float64, bool) {
	l, ok := o.nodes[id].lat[peer]
	return l, ok
}
