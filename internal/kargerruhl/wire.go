// Wire deployment of the Karger–Ruhl walk: each member serves its own
// distance-scale ball samples as an RPC and the walk's candidate probing is
// real pings over the runtime. At 0% loss the walk visits the identical
// candidates and returns the identical peer (the wire owns a same-seed
// Overlay, so the walk-start draw comes from the same stream); under
// faults a dead walk node ends the walk where it stands.

package kargerruhl

import (
	"math"
	"sort"
	"time"

	"nearestpeer/internal/p2p"
)

// Message types of the Karger–Ruhl wire protocol.
const (
	// MsgBalls asks a member for its ball samples at a scale and the next
	// one up — the pair the walk inspects per hop (ballsMsg/ballsOK).
	MsgBalls   = "kr_balls"
	MsgBallsOK = "kr_balls_ok"
)

type ballsMsg struct{ Scale int }
type ballsOK struct {
	At   []int // balls[scale]
	Next []int // balls[scale+1], empty at the top scale
}

func init() {
	p2p.RegisterPayload(MsgBalls, ballsMsg{})
	p2p.RegisterPayload(MsgBallsOK, ballsOK{})
}

// Wire is a deployed message-level Karger–Ruhl service. Member indices are
// runtime NodeIDs (the overlay is built over the runtime's latency
// matrix). The Wire owns its Overlay instance; build it with the same seed
// as a static leg's and the two walk identical paths at 0% loss.
type Wire struct {
	base *Overlay
	rt   p2p.Transport
	// Timeout bounds each probe and RPC; 0 uses the runtime default.
	Timeout time.Duration
	// Retry is the per-RPC retry policy.
	Retry p2p.Policy
}

// NewWire creates the wire deployment over an existing runtime.
func NewWire(rt p2p.Transport, base *Overlay) *Wire {
	return &Wire{base: base, rt: rt}
}

// Join brings a member up on the runtime and installs its ball handler.
func (w *Wire) Join(id p2p.NodeID) {
	n := w.rt.AddNode(id)
	n.Handle(MsgBalls, func(n *p2p.Node, env p2p.Envelope) {
		bm := env.Payload.(ballsMsg)
		node := w.base.nodes[int(n.ID)]
		out := ballsOK{}
		if bm.Scale >= 0 && bm.Scale < w.base.cfg.Scales {
			out.At = node.balls[bm.Scale]
			if bm.Scale+1 < w.base.cfg.Scales {
				out.Next = node.balls[bm.Scale+1]
			}
		}
		n.Reply(env, MsgBallsOK, out)
	})
}

// FindNearest runs the Karger–Ruhl walk over the wire from client. done
// fires exactly once unless the client dies mid-query.
func (w *Wire) FindNearest(client p2p.NodeID, done func(p2p.FindResult)) {
	n := w.rt.AddNode(client)
	res := p2p.FindResult{Peer: p2p.NoNode}
	members := w.base.members
	cur := members[w.base.src.Intn(len(members))]
	visited := map[int]bool{cur: true, int(client): true}

	var step func(cur int, d float64)
	step = func(cur int, d float64) {
		if res.Hops >= w.base.cfg.MaxHops {
			done(res)
			return
		}
		res.RPCs++
		n.RequestPolicy(p2p.NodeID(cur), MsgBalls, ballsMsg{Scale: w.base.scaleFor(d)}, w.Timeout, w.Retry,
			func(env p2p.Envelope) {
				bo := env.Payload.(ballsOK)
				cands := make([]int, 0, len(bo.At)+len(bo.Next))
				for _, c := range bo.At {
					if !visited[c] {
						cands = append(cands, c)
					}
				}
				for _, c := range bo.Next {
					if !visited[c] {
						cands = append(cands, c)
					}
				}
				if len(cands) == 0 {
					done(res)
					return
				}
				sort.Ints(cands)
				ids := make([]p2p.NodeID, len(cands))
				for i, c := range cands {
					ids[i] = p2p.NodeID(c)
					visited[c] = true
				}
				n.SweepPing(ids, w.Timeout, func(s p2p.PingSweep) {
					res.Probes += s.Probes
					res.DeadProbes += s.Dead
					if s.Found && (!res.Found || s.BestRTT < res.RTTms) {
						res.Peer, res.RTTms, res.Found = s.Best, s.BestRTT, true
					}
					if !s.Found || s.BestRTT >= d {
						done(res) // no progress: done, as in the static walk
						return
					}
					res.Hops++
					step(int(s.Best), s.BestRTT)
				})
			},
			func() {
				// The walk node is dead: the walk ends where it stands.
				res.RPCFails++
				done(res)
			})
	}

	// The walk can start at the searcher itself: no initial probe, widest
	// scale — exactly the static walk's degenerate start.
	if cur == int(client) {
		step(cur, math.Inf(1))
		return
	}
	res.Probes++
	n.Ping(p2p.NodeID(cur), w.Timeout, false, func(rtt float64, ok bool) {
		if !n.Alive() {
			return
		}
		if !ok {
			res.DeadProbes++
			done(res) // the chosen start is dead: nothing to walk
			return
		}
		res.Peer, res.RTTms, res.Found = p2p.NodeID(cur), rtt, true
		step(cur, rtt)
	})
}
