// Package obs is the simulation-native observability layer: a preallocated
// metrics registry (per-node and per-message-type counters plus log-spaced
// latency histograms), a fixed-capacity lookup flight recorder, and a
// periodic health sampler driven by typed kernel events.
//
// The package deliberately depends only on internal/sim and internal/stats.
// internal/p2p imports it (the runtime carries optional *Registry and
// *Recorder hooks behind nil checks), so obs identifies nodes by plain int
// matrix index rather than p2p.NodeID to keep the import graph acyclic.
//
// The discipline matches the runtime's own: everything is sized up front,
// the steady-state write paths (NoteSend, NoteRecv, Observe*, Record, one
// sampler tick) allocate nothing, and a runtime with no registry attached
// pays exactly one nil compare per message.
package obs

import (
	"sort"

	"nearestpeer/internal/stats"
)

// Histogram bounds for the registry's latency histograms: 0.1 ms to two
// virtual minutes spans everything from a single LAN hop to a lookup that
// burned its whole deadline, at ~15% per-bin resolution.
const (
	histLoMs  = 0.1
	histHiMs  = 120_000
	histNBins = 96
)

// Registry is the typed metrics registry for one runtime: dense per-node
// send/receive counters, per-message-type counters, and incremental
// log-spaced histograms of lookup and per-hop latency. All storage is
// preallocated at construction (the per-type table grows only when a
// message type is seen for the first time), so every note/observe call is
// allocation-free in steady state.
type Registry struct {
	nodeSent   []int64
	nodeRecv   []int64
	typeIdx    map[string]int
	typeNames  []string
	typeCounts []int64
	lookupMs   *stats.Histogram
	hopMs      *stats.Histogram

	// Fault-plane and retry-layer tallies (plain counters: the runtime's
	// Metrics carries the per-shard accounting; these are the registry's
	// run-wide view for figure rendering).
	faultDrops  int64
	faultDelays int64
	faultDups   int64
	retries     int64
}

// NewRegistry builds a registry for a population of nodes (ids must stay in
// [0, population)).
func NewRegistry(population int) *Registry {
	if population < 0 {
		population = 0
	}
	return &Registry{
		nodeSent: make([]int64, population),
		nodeRecv: make([]int64, population),
		typeIdx:  make(map[string]int, 32),
		lookupMs: stats.NewEmptyLogHistogram(histLoMs, histHiMs, histNBins),
		hopMs:    stats.NewEmptyLogHistogram(histLoMs, histHiMs, histNBins),
	}
}

// NoteSend records one envelope of the given type handed to the transport
// by node. A map read on a string key does not allocate, so once every
// message type in the workload has been seen the call is allocation-free.
func (r *Registry) NoteSend(node int, typ string) {
	if node >= 0 && node < len(r.nodeSent) {
		r.nodeSent[node]++
	}
	i, ok := r.typeIdx[typ]
	if !ok {
		i = len(r.typeCounts)
		r.typeIdx[typ] = i
		r.typeNames = append(r.typeNames, typ)
		r.typeCounts = append(r.typeCounts, 0)
	}
	r.typeCounts[i]++
}

// NoteRecv records one envelope delivered to node's inbox.
func (r *Registry) NoteRecv(node int) {
	if node >= 0 && node < len(r.nodeRecv) {
		r.nodeRecv[node]++
	}
}

// ObserveLookupMs adds one end-to-end lookup latency (virtual milliseconds)
// to the lookup histogram.
func (r *Registry) ObserveLookupMs(ms float64) { r.lookupMs.Observe(ms) }

// ObserveHopMs adds one per-hop RTT (virtual milliseconds) to the hop
// histogram.
func (r *Registry) ObserveHopMs(ms float64) { r.hopMs.Observe(ms) }

// NoteFaultDrop records one envelope discarded by the fault plane.
func (r *Registry) NoteFaultDrop() { r.faultDrops++ }

// NoteFaultDelay records one envelope the fault plane delayed.
func (r *Registry) NoteFaultDelay() { r.faultDelays++ }

// NoteFaultDup records one duplicate copy the fault plane injected.
func (r *Registry) NoteFaultDup() { r.faultDups++ }

// NoteRetry records one extra request attempt issued by the retry layer.
func (r *Registry) NoteRetry() { r.retries++ }

// FaultDrops returns the fault-plane drop tally.
func (r *Registry) FaultDrops() int64 { return r.faultDrops }

// FaultDelays returns the fault-plane delay tally.
func (r *Registry) FaultDelays() int64 { return r.faultDelays }

// FaultDups returns the fault-plane duplication tally.
func (r *Registry) FaultDups() int64 { return r.faultDups }

// Retries returns the retry-layer extra-attempt tally.
func (r *Registry) Retries() int64 { return r.retries }

// SentByNode returns the per-node sent-message counters, indexed by node
// id. The slice is the registry's own storage: read-only for callers.
func (r *Registry) SentByNode() []int64 { return r.nodeSent }

// RecvByNode returns the per-node delivered-message counters, indexed by
// node id. The slice is the registry's own storage: read-only for callers.
func (r *Registry) RecvByNode() []int64 { return r.nodeRecv }

// TypeCount returns how many messages of the given type have been sent.
func (r *Registry) TypeCount(typ string) int64 {
	if i, ok := r.typeIdx[typ]; ok {
		return r.typeCounts[i]
	}
	return 0
}

// TypeTally is one per-message-type counter in a registry snapshot.
type TypeTally struct {
	// Type is the wire message type tag.
	Type string
	// Count is how many envelopes of that type were sent.
	Count int64
}

// TopTypes returns the n most-sent message types, ordered by descending
// count with ties broken by type name — a deterministic summary of the
// wire traffic mix. It allocates and is meant for end-of-run reporting.
func (r *Registry) TopTypes(n int) []TypeTally {
	all := make([]TypeTally, len(r.typeNames))
	for i, name := range r.typeNames {
		all[i] = TypeTally{Type: name, Count: r.typeCounts[i]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Type < all[j].Type
	})
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// LookupQuantileMs estimates the q-th quantile of the recorded lookup
// latencies from the log-spaced histogram (resolution: one bin, ~15%).
func (r *Registry) LookupQuantileMs(q float64) float64 { return r.lookupMs.Quantile(q) }

// HopQuantileMs estimates the q-th quantile of the recorded per-hop RTTs.
func (r *Registry) HopQuantileMs(q float64) float64 { return r.hopMs.Quantile(q) }

// Lookups returns how many lookup latencies have been observed.
func (r *Registry) Lookups() int { return r.lookupMs.Total() }

// LookupHistogram returns the underlying lookup-latency histogram.
func (r *Registry) LookupHistogram() *stats.Histogram { return r.lookupMs }

// HopHistogram returns the underlying per-hop RTT histogram.
func (r *Registry) HopHistogram() *stats.Histogram { return r.hopMs }
