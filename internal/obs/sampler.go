package obs

import (
	"time"

	"nearestpeer/internal/sim"
)

// Sample is one periodic runtime-health reading.
type Sample struct {
	// At is the virtual time of the reading.
	At time.Duration
	// Inflight is the number of envelopes in flight (runtime slab depth).
	Inflight int
	// Queue is the kernel event-queue depth at the reading.
	Queue int
	// Live is the live node population.
	Live int
}

// Probe supplies one reading's values; the runtime that owns the sampler
// provides it (see p2p.Runtime.StartHealthSampler).
type Probe func() (inflight, queue, live int)

// Sampler periodically records runtime health into a fixed ring, driven by
// a typed kernel event that reschedules itself — one preallocated handler,
// no closure per tick, nothing allocated in steady state.
//
// A sampler keeps the kernel's queue non-empty until its horizon, so code
// that drives the kernel with a drain-the-queue Run() must either set a
// horizon or stop the kernel explicitly.
type Sampler struct {
	kernel  *sim.Sim
	every   time.Duration
	horizon time.Duration
	probe   Probe
	h       sim.HandlerID
	ring    []Sample
	next    int
	total   uint64
}

// NewSampler builds a sampler ticking every `every` of virtual time until
// horizon (0 = no horizon: tick until the kernel stops), holding the last
// `capacity` samples. Call Start to schedule the first tick.
func NewSampler(kernel *sim.Sim, every, horizon time.Duration, capacity int, probe Probe) *Sampler {
	if every <= 0 {
		panic("obs: NewSampler requires every > 0")
	}
	if capacity <= 0 {
		panic("obs: NewSampler requires capacity > 0")
	}
	if probe == nil {
		panic("obs: NewSampler requires a probe")
	}
	s := &Sampler{
		kernel:  kernel,
		every:   every,
		horizon: horizon,
		probe:   probe,
		ring:    make([]Sample, capacity),
	}
	s.h = kernel.RegisterHandler(s.tick)
	return s
}

// Start schedules the first tick one period from now.
func (s *Sampler) Start() {
	s.kernel.AfterHandler(s.every, s.h, 0)
}

// tick is the registered kernel handler: read the probe, write the ring
// slot, reschedule unless the next tick would pass the horizon.
func (s *Sampler) tick(uint64) {
	inflight, queue, live := s.probe()
	s.ring[s.next] = Sample{At: s.kernel.Now(), Inflight: inflight, Queue: queue, Live: live}
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
	}
	s.total++
	if s.horizon > 0 && s.kernel.Now()+s.every > s.horizon {
		return
	}
	s.kernel.AfterHandler(s.every, s.h, 0)
}

// Count returns the total number of samples taken.
func (s *Sampler) Count() uint64 { return s.total }

// Samples copies the held samples out in chronological order (at most the
// ring capacity; older samples are overwritten).
func (s *Sampler) Samples() []Sample {
	n := int(s.total)
	if s.total >= uint64(len(s.ring)) {
		n = len(s.ring)
	}
	out := make([]Sample, 0, n)
	start := 0
	if s.total >= uint64(len(s.ring)) {
		start = s.next
	}
	for i := 0; i < n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}
