package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"nearestpeer/internal/sim"
)

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry(4)
	r.NoteSend(0, "ping")
	r.NoteSend(0, "ping")
	r.NoteSend(1, "c_find")
	r.NoteSend(2, "ping")
	r.NoteRecv(3)
	r.NoteRecv(3)
	// Out-of-range ids must be ignored, not panic: a registry can be
	// attached to a runtime whose population it was not sized for.
	r.NoteSend(99, "ping")
	r.NoteRecv(-1)
	if got := r.SentByNode()[0]; got != 2 {
		t.Fatalf("node 0 sent = %d, want 2", got)
	}
	if got := r.RecvByNode()[3]; got != 2 {
		t.Fatalf("node 3 recv = %d, want 2", got)
	}
	if got := r.TypeCount("ping"); got != 4 {
		t.Fatalf("ping count = %d, want 4", got)
	}
	if got := r.TypeCount("absent"); got != 0 {
		t.Fatalf("absent count = %d, want 0", got)
	}
	top := r.TopTypes(2)
	if len(top) != 2 || top[0].Type != "ping" || top[0].Count != 4 || top[1].Type != "c_find" {
		t.Fatalf("TopTypes = %+v", top)
	}
}

func TestRegistryTopTypesTieBreak(t *testing.T) {
	r := NewRegistry(1)
	r.NoteSend(0, "b")
	r.NoteSend(0, "a")
	top := r.TopTypes(0)
	if len(top) != 2 || top[0].Type != "a" || top[1].Type != "b" {
		t.Fatalf("equal counts must order by name: %+v", top)
	}
}

func TestRegistryQuantiles(t *testing.T) {
	r := NewRegistry(1)
	for i := 0; i < 100; i++ {
		r.ObserveLookupMs(10)
	}
	if r.Lookups() != 100 {
		t.Fatalf("Lookups = %d, want 100", r.Lookups())
	}
	p50 := r.LookupQuantileMs(0.5)
	// Histogram resolution is one log bin (~15%); the estimate must land
	// inside the bin that holds 10 ms.
	if p50 < 8 || p50 > 13 {
		t.Fatalf("p50 of constant 10ms = %v, want ~10", p50)
	}
	r.ObserveHopMs(5)
	if r.HopHistogram().Total() != 1 {
		t.Fatalf("hop total = %d, want 1", r.HopHistogram().Total())
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	if r.Begin() != 1 || r.Begin() != 2 {
		t.Fatal("Begin must count up from 1")
	}
	for i := 0; i < 5; i++ {
		r.Record(Hop{Lookup: uint64(i), Scheme: "chord", Type: "c_find", From: i, To: i + 1})
	}
	if r.Len() != 3 || r.Recorded() != 5 || r.Dropped() != 2 {
		t.Fatalf("Len=%d Recorded=%d Dropped=%d, want 3/5/2", r.Len(), r.Recorded(), r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Lookup != 2 || snap[2].Lookup != 4 {
		t.Fatalf("snapshot out of order: %+v", snap)
	}
}

func TestRecorderWriteJSON(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Hop{Lookup: 1, Scheme: "vivaldi", Type: "v_walk", From: 3, To: 7,
		At: 1500 * time.Millisecond, RTTms: 42.5, Outcome: HopTimeout})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Schema   string `json:"schema"`
		Recorded uint64 `json:"recorded"`
		Dropped  uint64 `json:"dropped"`
		Hops     []struct {
			Scheme  string  `json:"scheme"`
			AtMs    float64 `json:"at_ms"`
			RTTms   float64 `json:"rtt_ms"`
			Outcome string  `json:"outcome"`
		} `json:"hops"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Schema != "nearestpeer/flight_recorder/v1" || doc.Recorded != 1 || doc.Dropped != 0 {
		t.Fatalf("header: %+v", doc)
	}
	h := doc.Hops[0]
	if h.Scheme != "vivaldi" || h.AtMs != 1500 || h.RTTms != 42.5 || h.Outcome != "timeout" {
		t.Fatalf("hop: %+v", h)
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{HopOK: "ok", HopTimeout: "timeout", HopRetry: "retry", HopAlternate: "alternate", Outcome(99): "unknown"}
	for o, s := range want {
		if o.String() != s {
			t.Fatalf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}

func TestSamplerTicksAndHorizon(t *testing.T) {
	kernel := sim.New()
	live := 10
	s := NewSampler(kernel, time.Second, 5*time.Second, 16, func() (int, int, int) {
		return 2, kernel.Pending(), live
	})
	s.Start()
	kernel.Run()
	// Ticks at 1s..5s; the tick at 5s must not reschedule past the horizon.
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	samples := s.Samples()
	if len(samples) != 5 || samples[0].At != time.Second || samples[4].At != 5*time.Second {
		t.Fatalf("samples: %+v", samples)
	}
	if samples[0].Inflight != 2 || samples[0].Live != 10 {
		t.Fatalf("probe values not recorded: %+v", samples[0])
	}
}

func TestSamplerRingWrap(t *testing.T) {
	kernel := sim.New()
	s := NewSampler(kernel, time.Second, 6*time.Second, 4, func() (int, int, int) { return 0, 0, 0 })
	s.Start()
	kernel.Run()
	samples := s.Samples()
	if s.Count() != 6 || len(samples) != 4 {
		t.Fatalf("Count=%d len=%d, want 6/4", s.Count(), len(samples))
	}
	if samples[0].At != 3*time.Second || samples[3].At != 6*time.Second {
		t.Fatalf("wrapped samples out of order: %+v", samples)
	}
}

func TestObsWritePathsZeroAlloc(t *testing.T) {
	reg := NewRegistry(64)
	rec := NewRecorder(32)
	kernel := sim.New()
	s := NewSampler(kernel, time.Millisecond, time.Hour, 8, func() (int, int, int) { return 1, kernel.Pending(), 64 })
	// Warm up: see every message type once, wrap both rings, grow the
	// kernel queue to its high-water mark.
	for i := 0; i < 64; i++ {
		reg.NoteSend(i%64, "ping")
		reg.NoteSend(i%64, "c_find")
		reg.ObserveLookupMs(float64(i + 1))
		rec.Record(Hop{Lookup: uint64(i), Scheme: "chord", Type: "c_find"})
	}
	s.Start()
	kernel.RunUntil(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		reg.NoteSend(7, "ping")
		reg.NoteRecv(9)
		reg.ObserveLookupMs(12.5)
		reg.ObserveHopMs(3.25)
		rec.Record(Hop{Lookup: 1, Scheme: "chord", Type: "c_find", From: 1, To: 2, RTTms: 10})
		now := kernel.Now()
		kernel.RunUntil(now + 5*time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("obs write paths allocated %.1f allocs/op, want 0", allocs)
	}
}
