package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Outcome classifies how one recorded hop ended.
type Outcome uint8

// Hop outcomes. HopRetry marks a hop re-issued after a predecessor timed
// out on the same lookup; HopAlternate marks a fallback route taken after
// the preferred next hop failed.
const (
	HopOK Outcome = iota
	HopTimeout
	HopRetry
	HopAlternate
)

// String returns the outcome's wire name (used in the JSON dump).
func (o Outcome) String() string {
	switch o {
	case HopOK:
		return "ok"
	case HopTimeout:
		return "timeout"
	case HopRetry:
		return "retry"
	case HopAlternate:
		return "alternate"
	}
	return "unknown"
}

// Hop is one per-hop flight-recorder trace record. It is stored by value in
// the recorder's ring — no pointers beyond the two (constant) strings — so
// recording one costs a single slot write.
type Hop struct {
	// Lookup groups the hops of one lookup (from Recorder.Begin, or a
	// scheme-native query ID).
	Lookup uint64
	// Scheme names the lookup scheme ("chord", "meridian", "vivaldi").
	Scheme string
	// Type is the wire message type the hop used.
	Type string
	// From and To are the hop endpoints (matrix indices).
	From, To int
	// At is the virtual time the hop was issued.
	At time.Duration
	// RTTms is the measured round trip in virtual milliseconds (0 when the
	// hop timed out).
	RTTms float64
	// Outcome tells how the hop ended.
	Outcome Outcome
}

// Recorder is the lookup flight recorder: a fixed-capacity ring buffer of
// per-hop trace records. When full it overwrites the oldest record and
// counts the overwrite, so attaching one to an arbitrarily long run is safe
// and allocation-free after construction.
type Recorder struct {
	ring    []Hop
	next    int
	total   uint64
	lookups uint64
}

// NewRecorder builds a flight recorder holding up to capacity hops.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic("obs: NewRecorder requires capacity > 0")
	}
	return &Recorder{ring: make([]Hop, capacity)}
}

// Begin allocates a recorder-unique lookup ID to group a lookup's hops.
func (r *Recorder) Begin() uint64 {
	r.lookups++
	return r.lookups
}

// Record appends one hop, overwriting the oldest record when the ring is
// full. It never allocates.
func (r *Recorder) Record(h Hop) {
	r.ring[r.next] = h
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.total++
}

// Len returns the number of hops currently held (at most the capacity).
func (r *Recorder) Len() int {
	if r.total >= uint64(len(r.ring)) {
		return len(r.ring)
	}
	return int(r.total)
}

// Recorded returns the total number of hops ever recorded.
func (r *Recorder) Recorded() uint64 { return r.total }

// Dropped returns how many records were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r.total > uint64(len(r.ring)) {
		return r.total - uint64(len(r.ring))
	}
	return 0
}

// Snapshot copies the held records out in chronological order.
func (r *Recorder) Snapshot() []Hop {
	n := r.Len()
	out := make([]Hop, 0, n)
	start := 0
	if r.total >= uint64(len(r.ring)) {
		start = r.next // oldest surviving record
	}
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// hopJSON is the wire form of one Hop in the trace dump.
type hopJSON struct {
	Lookup  uint64  `json:"lookup"`
	Scheme  string  `json:"scheme"`
	Type    string  `json:"type"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	AtMs    float64 `json:"at_ms"`
	RTTms   float64 `json:"rtt_ms"`
	Outcome string  `json:"outcome"`
}

// traceJSON is the top-level trace dump written by WriteJSON.
type traceJSON struct {
	Schema   string    `json:"schema"`
	Recorded uint64    `json:"recorded"`
	Dropped  uint64    `json:"dropped"`
	Hops     []hopJSON `json:"hops"`
}

// WriteJSON dumps the held records as indented JSON (schema
// nearestpeer/flight_recorder/v1), oldest first, with virtual times in
// milliseconds. This is the payload behind `npsim -trace`.
func (r *Recorder) WriteJSON(w io.Writer) error {
	hops := r.Snapshot()
	doc := traceJSON{
		Schema:   "nearestpeer/flight_recorder/v1",
		Recorded: r.Recorded(),
		Dropped:  r.Dropped(),
		Hops:     make([]hopJSON, len(hops)),
	}
	for i, h := range hops {
		doc.Hops[i] = hopJSON{
			Lookup:  h.Lookup,
			Scheme:  h.Scheme,
			Type:    h.Type,
			From:    h.From,
			To:      h.To,
			AtMs:    float64(h.At) / float64(time.Millisecond),
			RTTms:   h.RTTms,
			Outcome: h.Outcome.String(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
