package dht_test

// Fuzz targets for the ring arithmetic every Chord deployment in this
// repository routes with (the static Ring and the message-level
// internal/p2p port both import these). The reference implementations are
// derived independently over math/big — actual modular arithmetic on the
// 2^64 ring, not a re-statement of the uint64 tricks under test — so a
// wrap-around bug cannot hide in both sides at once.
//
// The seed corpus under testdata/fuzz replays as ordinary tests in every
// `go test` run (and CI runs them explicitly); `go test -fuzz=FuzzRing`
// explores beyond it.

import (
	"math/big"
	"testing"

	"nearestpeer/internal/dht"
)

var ringMod = new(big.Int).Lsh(big.NewInt(1), 64)

// refRingDist is the clockwise distance (b - a) mod 2^64 over math/big.
func refRingDist(a, b uint64) uint64 {
	d := new(big.Int).Sub(new(big.Int).SetUint64(b), new(big.Int).SetUint64(a))
	d.Mod(d, ringMod)
	return d.Uint64()
}

// refBetween: x ∈ (a, b) on the ring iff 0 < dist(a,x) < dist(a,b), where
// the degenerate a == b interval is the whole ring minus a (dist 2^64).
func refBetween(x, a, b uint64) bool {
	dx := new(big.Int).Sub(new(big.Int).SetUint64(x), new(big.Int).SetUint64(a))
	dx.Mod(dx, ringMod)
	db := new(big.Int).Sub(new(big.Int).SetUint64(b), new(big.Int).SetUint64(a))
	db.Mod(db, ringMod)
	if db.Sign() == 0 {
		db = ringMod // a == b: full ring
	}
	return dx.Sign() > 0 && dx.Cmp(db) < 0
}

// ringSeeds are the corner cases every interval predicate gets wrong first.
func ringSeeds(f *testing.F) {
	const maxU = ^uint64(0)
	for _, s := range [][3]uint64{
		{0, 0, 0}, {1, 0, 0}, {0, 1, 1}, {5, 3, 9}, {3, 3, 9}, {9, 3, 9},
		{1, 9, 3}, {0, 9, 3}, {maxU, 9, 3}, {maxU, maxU - 1, 1},
		{0, maxU, 1}, {maxU, 0, maxU}, {1 << 63, 0, maxU},
	} {
		f.Add(s[0], s[1], s[2])
	}
}

// FuzzRingInterval cross-checks Between and BetweenRightIncl against the
// big.Int reference.
func FuzzRingInterval(f *testing.F) {
	ringSeeds(f)
	f.Fuzz(func(t *testing.T, x, a, b uint64) {
		if got, want := dht.Between(x, a, b), refBetween(x, a, b); got != want {
			t.Fatalf("Between(%d, %d, %d) = %v, big.Int reference %v", x, a, b, got, want)
		}
		wantIncl := x == b || refBetween(x, a, b)
		if got := dht.BetweenRightIncl(x, a, b); got != wantIncl {
			t.Fatalf("BetweenRightIncl(%d, %d, %d) = %v, big.Int reference %v", x, a, b, got, wantIncl)
		}
	})
}

// FuzzRingDist cross-checks RingDist against the big.Int reference and its
// algebra: distances around the ring sum to zero, and Between is exactly
// the strict-distance formulation.
func FuzzRingDist(f *testing.F) {
	ringSeeds(f)
	f.Fuzz(func(t *testing.T, x, a, b uint64) {
		if got, want := dht.RingDist(a, b), refRingDist(a, b); got != want {
			t.Fatalf("RingDist(%d, %d) = %d, big.Int reference %d", a, b, got, want)
		}
		if dht.RingDist(a, b)+dht.RingDist(b, a) != 0 {
			t.Fatalf("RingDist(%d,%d) + RingDist(%d,%d) != 0 mod 2^64", a, b, b, a)
		}
		if dht.RingDist(a, a) != 0 {
			t.Fatalf("RingDist(%d,%d) != 0", a, a)
		}
		// Strict-distance formulation of the open interval.
		wantBetween := x != a && (a == b || dht.RingDist(a, x) < dht.RingDist(a, b))
		if got := dht.Between(x, a, b); got != wantBetween {
			t.Fatalf("Between(%d, %d, %d) = %v, distance formulation %v", x, a, b, got, wantBetween)
		}
	})
}
