// Package dht implements a Chord distributed hash table (Stoica et al.,
// SIGCOMM 2001) — the key-value mapping infrastructure the paper's Section
// 5 mitigations require ("the participant peers can themselves host the
// key-value maps required above, using one of several DHT designs").
//
// The implementation is a faithful simulation of Chord's structure: a
// 64-bit identifier ring, consistent hashing of node addresses and keys
// (keys are hashed, as the paper prescribes for non-uniform keys like IP
// addresses), successor lists, finger tables, O(log n) iterative lookups
// with hop accounting, and join/leave with key migration.
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
)

// hashBytes maps arbitrary bytes onto the 64-bit ring.
func hashBytes(b []byte) uint64 {
	sum := sha1.Sum(b)
	return binary.BigEndian.Uint64(sum[:8])
}

// HashKey maps a string key onto the ring.
func HashKey(key string) uint64 { return hashBytes([]byte(key)) }

// node is one DHT participant.
type node struct {
	id     uint64
	addr   string
	data   map[string][][]byte
	finger []uint64 // finger[i] = first node at or after id + 2^i
}

// Ring is a Chord ring.
type Ring struct {
	nodes map[uint64]*node
	// sorted node ids for successor computation.
	ids []uint64
	// Lookups and Hops account routing cost.
	Lookups int64
	Hops    int64
}

// New builds a ring over the given node addresses. Duplicate addresses are
// rejected; hash collisions (astronomically unlikely) panic.
func New(addrs []string) *Ring {
	r := &Ring{nodes: make(map[uint64]*node, len(addrs))}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if seen[a] {
			panic(fmt.Sprintf("dht: duplicate node address %q", a))
		}
		seen[a] = true
		r.insertNode(a)
	}
	r.rebuildFingers()
	return r
}

func (r *Ring) insertNode(addr string) *node {
	id := hashBytes([]byte(addr))
	if _, clash := r.nodes[id]; clash {
		panic(fmt.Sprintf("dht: node id collision for %q", addr))
	}
	n := &node{id: id, addr: addr, data: make(map[string][][]byte)}
	r.nodes[id] = n
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	r.ids = append(r.ids, 0)
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = id
	return n
}

// NumNodes returns the ring size.
func (r *Ring) NumNodes() int { return len(r.ids) }

// successor returns the first node id at or after k on the ring.
func (r *Ring) successor(k uint64) uint64 {
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= k })
	if i == len(r.ids) {
		i = 0 // wrap
	}
	return r.ids[i]
}

// rebuildFingers recomputes every node's finger table. (A real deployment
// stabilises incrementally; the simulation rebuilds after membership
// changes, preserving lookup behaviour.)
func (r *Ring) rebuildFingers() {
	for _, n := range r.nodes {
		n.finger = n.finger[:0]
		for i := 0; i < 64; i++ {
			target := n.id + 1<<uint(i) // wrapping addition is ring arithmetic
			n.finger = append(n.finger, r.successor(target))
		}
	}
}

// Between reports whether x lies in the open ring interval (a, b). When
// a == b the interval is the whole ring minus a (Chord's convention). It is
// exported because the message-level Chord protocol (internal/p2p) routes
// with the same ring arithmetic.
func Between(x, a, b uint64) bool {
	switch {
	case a < b:
		return x > a && x < b
	case a > b:
		return x > a || x < b // wrapped interval
	default:
		return x != a
	}
}

// BetweenRightIncl reports whether x lies in the half-open ring interval
// (a, b] — the ownership test: the successor of a key k is the first node n
// with k ∈ (pred(n), n].
func BetweenRightIncl(x, a, b uint64) bool { return x == b || Between(x, a, b) }

// RingDist returns the clockwise distance from a to b on the ring —
// how far a lookup at a still has to travel to reach b.
func RingDist(a, b uint64) uint64 { return b - a } // wrapping subtraction is ring arithmetic

// lookup routes iteratively from a starting node to the key's successor,
// returning the owner and the number of routing hops.
func (r *Ring) lookup(from uint64, key uint64) (uint64, int) {
	owner := r.successor(key)
	cur := from
	hops := 0
	for cur != owner {
		n := r.nodes[cur]
		// Closest preceding finger that moves toward the key without
		// overshooting.
		next := cur
		for i := 63; i >= 0; i-- {
			f := n.finger[i]
			if f != cur && Between(f, cur, key) {
				next = f
				break
			}
		}
		if next == cur {
			// Fingers exhausted: step to immediate successor.
			next = r.successor(cur + 1)
		}
		cur = next
		hops++
		if hops > 2*len(r.ids) {
			panic("dht: lookup failed to converge")
		}
	}
	return owner, hops
}

// startNode picks a deterministic entry point for a lookup.
func (r *Ring) startNode(key string) uint64 {
	// Enter at the node owning the hash of the key reversed — an
	// arbitrary but deterministic spread of entry points.
	rev := make([]byte, len(key))
	for i := 0; i < len(key); i++ {
		rev[i] = key[len(key)-1-i]
	}
	return r.successor(hashBytes(rev))
}

// Put stores value under key (appending to the key's value set), routing
// from an arbitrary entry node and accounting hops.
func (r *Ring) Put(key string, value []byte) {
	k := HashKey(key)
	owner, hops := r.lookup(r.startNode(key), k)
	r.Lookups++
	r.Hops += int64(hops)
	n := r.nodes[owner]
	n.data[key] = append(n.data[key], append([]byte(nil), value...))
}

// Get returns all values stored under key.
func (r *Ring) Get(key string) [][]byte {
	k := HashKey(key)
	owner, hops := r.lookup(r.startNode(key), k)
	r.Lookups++
	r.Hops += int64(hops)
	vals := r.nodes[owner].data[key]
	out := make([][]byte, len(vals))
	for i, v := range vals {
		out[i] = append([]byte(nil), v...)
	}
	return out
}

// Remove deletes values equal to value under key (all of them); removing a
// peer's mapping when it leaves the P2P system.
func (r *Ring) Remove(key string, value []byte) {
	k := HashKey(key)
	owner, hops := r.lookup(r.startNode(key), k)
	r.Lookups++
	r.Hops += int64(hops)
	n := r.nodes[owner]
	vals := n.data[key]
	kept := vals[:0]
	for _, v := range vals {
		if string(v) != string(value) {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		delete(n.data, key)
	} else {
		n.data[key] = kept
	}
}

// Join adds a node and migrates the keys it now owns.
func (r *Ring) Join(addr string) {
	n := r.insertNode(addr)
	r.rebuildFingers()
	// Keys whose hash now maps to the new node move from its successor.
	succID := r.successor(n.id + 1)
	succ := r.nodes[succID]
	for key, vals := range succ.data {
		if r.successor(HashKey(key)) == n.id {
			n.data[key] = vals
			delete(succ.data, key)
		}
	}
}

// Leave removes a node, handing its keys to its successor.
func (r *Ring) Leave(addr string) {
	id := hashBytes([]byte(addr))
	n, ok := r.nodes[id]
	if !ok {
		panic(fmt.Sprintf("dht: Leave of unknown node %q", addr))
	}
	if len(r.ids) == 1 {
		panic("dht: cannot remove the last node")
	}
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
	delete(r.nodes, id)
	succ := r.nodes[r.successor(id)]
	for key, vals := range n.data {
		succ.data[key] = append(succ.data[key], vals...)
	}
	r.rebuildFingers()
}

// OwnerOf returns the address of the node responsible for key (tests).
func (r *Ring) OwnerOf(key string) string {
	return r.nodes[r.successor(HashKey(key))].addr
}

// MeanLookupHops reports the average hops per lookup so far.
func (r *Ring) MeanLookupHops() float64 {
	if r.Lookups == 0 {
		return 0
	}
	return float64(r.Hops) / float64(r.Lookups)
}
