package dht

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func addrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%04d", i)
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	r := New(addrs(50))
	r.Put("router-10.0.0.1", []byte("peer-a"))
	r.Put("router-10.0.0.1", []byte("peer-b"))
	r.Put("router-10.0.0.2", []byte("peer-c"))

	got := r.Get("router-10.0.0.1")
	if len(got) != 2 {
		t.Fatalf("got %d values", len(got))
	}
	if string(got[0]) != "peer-a" || string(got[1]) != "peer-b" {
		t.Fatalf("values = %q", got)
	}
	if v := r.Get("router-10.0.0.2"); len(v) != 1 || string(v[0]) != "peer-c" {
		t.Fatalf("second key = %q", v)
	}
	if v := r.Get("missing"); len(v) != 0 {
		t.Fatalf("missing key returned %q", v)
	}
}

func TestGetReturnsCopies(t *testing.T) {
	r := New(addrs(10))
	r.Put("k", []byte("value"))
	got := r.Get("k")
	got[0][0] = 'X'
	if string(r.Get("k")[0]) != "value" {
		t.Fatal("Get exposed internal storage")
	}
}

func TestRemove(t *testing.T) {
	r := New(addrs(20))
	r.Put("k", []byte("a"))
	r.Put("k", []byte("b"))
	r.Remove("k", []byte("a"))
	got := r.Get("k")
	if len(got) != 1 || string(got[0]) != "b" {
		t.Fatalf("after remove: %q", got)
	}
	r.Remove("k", []byte("b"))
	if len(r.Get("k")) != 0 {
		t.Fatal("key not fully removed")
	}
}

func TestKeysLandOnSuccessor(t *testing.T) {
	r := New(addrs(64))
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := r.OwnerOf(key)
		// The owner must be the ring successor of the key hash.
		k := HashKey(key)
		want := r.nodes[r.successor(k)].addr
		if owner != want {
			t.Fatalf("owner %q != successor %q", owner, want)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r := New(addrs(512))
	for i := 0; i < 300; i++ {
		r.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	mean := r.MeanLookupHops()
	// log2(512) = 9; allow generous slack but verify it's not linear.
	if mean > 2.5*math.Log2(512) {
		t.Fatalf("mean lookup hops %v, expected O(log n)", mean)
	}
	if mean == 0 {
		t.Fatal("no hops recorded — fingers are degenerate")
	}
}

func TestJoinMigratesKeys(t *testing.T) {
	r := New(addrs(16))
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		r.Put(keys[i], []byte(keys[i]))
	}
	r.Join("late-joiner-1")
	r.Join("late-joiner-2")
	// Every key still resolves to its value, and ownership matches the
	// post-join successor rule.
	for _, k := range keys {
		got := r.Get(k)
		if len(got) != 1 || string(got[0]) != k {
			t.Fatalf("key %q lost after join: %q", k, got)
		}
		if r.OwnerOf(k) != r.nodes[r.successor(HashKey(k))].addr {
			t.Fatalf("key %q owned by wrong node after join", k)
		}
	}
}

func TestLeaveHandsOffKeys(t *testing.T) {
	as := addrs(16)
	r := New(as)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		r.Put(keys[i], []byte(keys[i]))
	}
	for i := 0; i < 8; i++ {
		r.Leave(as[i])
	}
	for _, k := range keys {
		got := r.Get(k)
		if len(got) != 1 || string(got[0]) != k {
			t.Fatalf("key %q lost after leaves: %q", k, got)
		}
	}
}

func TestChurnProperty(t *testing.T) {
	// Property: after any interleaving of joins and leaves, all stored
	// keys remain retrievable.
	err := quick.Check(func(ops []bool, seed uint32) bool {
		base := addrs(8)
		r := New(base)
		for i := 0; i < 40; i++ {
			r.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		}
		joined := 0
		present := append([]string(nil), base...)
		for i, join := range ops {
			if len(ops) > 12 && i >= 12 {
				break
			}
			if join {
				addr := fmt.Sprintf("churn-%d-%d", seed, joined)
				r.Join(addr)
				present = append(present, addr)
				joined++
			} else if len(present) > 1 {
				idx := int(seed+uint32(i)) % len(present)
				r.Leave(present[idx])
				present = append(present[:idx], present[idx+1:]...)
			}
		}
		for i := 0; i < 40; i++ {
			v := r.Get(fmt.Sprintf("k%d", i))
			if len(v) != 1 || v[0][0] != byte(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New([]string{"a", "a"})
}

func TestLeaveUnknownPanics(t *testing.T) {
	r := New(addrs(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Leave("nope")
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashKey("abc") != HashKey("abc") {
		t.Fatal("hash not deterministic")
	}
	if HashKey("abc") == HashKey("abd") {
		t.Fatal("implausible hash collision")
	}
}
