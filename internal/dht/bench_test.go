package dht

import (
	"fmt"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	r := New(addrs(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Put(fmt.Sprintf("key-%d", i%1000), []byte("v"))
	}
}

func BenchmarkGet(b *testing.B) {
	r := New(addrs(256))
	for i := 0; i < 1000; i++ {
		r.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Get(fmt.Sprintf("key-%d", i%1000))
	}
}

func BenchmarkLookupRouting(b *testing.B) {
	r := New(addrs(1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := HashKey(fmt.Sprintf("key-%d", i))
		_, _ = r.lookup(r.ids[i%len(r.ids)], k)
	}
}
